package region

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"

	"libcrpm/internal/nvm"
)

// Checksummed metadata ("v2 extension") layout. It is selected per container
// by Config.Checksums at Format time and recorded durably in the header flag
// word, so Open never has to guess: a container is checksummed iff the flag
// bit (or, if the header line itself is corrupt, the extension magic) says
// so.
//
// On-media geometry when the extension is enabled:
//
//	[0,   28)  magic, version, seg/blk sizes, segment counts   (as v1)
//	[28,  32)  flags word, bit 0 = metadata checksums enabled
//	[32,  40)  committed_epoch                                 (as v1)
//	[40,  48)  CRC64 of committed_epoch — same cache line as the
//	           epoch, so the pair is updated crash-atomically and is
//	           verifiable at ANY crash point, sealed or not
//	[48, ...)  seg_state[0], seg_state[1], backup_to_main      (as v1,
//	           shifted by 8 bytes)
//	ext        one 64-aligned cache line:
//	             +0  extension magic
//	             +8  seal epoch (epoch the container was sealed at)
//	             +16 seal flags: 1 = sealed, 2 = unsealed
//	             +24 CRC64 over ext[0:24] (the seal words)
//	             +32 CRC64 over meta[0:32] (header through flags)
//	             +40 CRC64 over seg_state[0]
//	             +48 CRC64 over seg_state[1]
//	             +56 CRC64 over backup_to_main
//	shadow     redundant copy at ext+64: meta[0:48] ++ seg_state[0] ++
//	           seg_state[1] ++ backup_to_main ++ seal epoch ++ CRC64
//	           over all preceding shadow bytes
//
// The whole-structure CRCs can only be maintained at protocol quiescent
// points — copy-on-write legally mutates the active segment-state array in
// the middle of an epoch, long before the next flush of a CRC word could be
// made crash-atomic with it. The seal protocol resolves this: every
// metadata mutator first durably marks the container unsealed (store, flush,
// fence — the fence guarantees no mutation can persist while the unseal is
// dropped), and Seal() re-validates at the end of Format, checkpoint, and
// recovery. Validation therefore applies two rule sets:
//
//   - sealed: every CRC and the shadow copy must verify exactly;
//   - unsealed: only the epoch's inline CRC and the domain invariants are
//     checkable — the arrays are legally mid-mutation and the shadow is
//     legally stale.
//
// Repair never trusts the shadow for the SEAL STATE itself: restoring
// "sealed" onto a legally mid-epoch image would resurrect stale arrays. A
// corrupt seal line is always repaired to "unsealed", which hands the image
// to the ordinary (checksum-free) recovery protocol — correct by the
// paper's own argument.
const (
	offFlags        = 28 // uint32 flags word in the header line
	offEpochCRC     = 40 // CRC64 of the epoch (checksummed layout only)
	ckMetaFixedSize = 48 // fixed header size when checksums are enabled

	// ExtMagic identifies the checksum extension line ("CRPCSKV1").
	ExtMagic uint64 = 0x43525043534b5631

	extOffMagic     = 0
	extOffSealEpoch = 8
	extOffSealFlags = 16
	extOffSealCRC   = 24
	extOffCRCHeader = 32
	extOffCRCSeg0   = 40
	extOffCRCSeg1   = 48
	extOffCRCPairs  = 56

	sealSealed   uint64 = 1
	sealUnsealed uint64 = 2

	// flagChecksums marks a checksummed container in the header flag word.
	flagChecksums uint32 = 1

	shadowHeaderLen = 48 // shadow copies meta[0:48]
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksummed reports whether this layout carries the metadata checksum
// extension.
func (l *Layout) Checksummed() bool { return l.ck }

// withChecksums returns a copy of the layout with the checksum extension
// toggled and all derived offsets recomputed. The receiver is unchanged.
func (l *Layout) withChecksums(on bool) *Layout {
	if l.ck == on {
		return l
	}
	c := *l
	c.ck = on
	c.resolveOffsets()
	return &c
}

func (l *Layout) shadowEnd() int { return l.shadowOff + l.shadowLen }

// DetectChecksums reports whether the container on dev was formatted with
// metadata checksums, judging by the header flag bit OR the extension magic
// (at the position l's geometry implies). Two independent witnesses mean a
// single corrupted cache line cannot silently disable validation. The magic
// probe is only consulted when its offset falls inside the plain layout's
// metadata padding — in a plain container that area is never written, so
// the probe cannot misread application data as an extension.
func DetectChecksums(dev *nvm.Device, l *Layout) bool {
	w := dev.Working()
	if len(w) >= offFlags+4 && binary.LittleEndian.Uint32(w[offFlags:])&flagChecksums != 0 {
		return true
	}
	ckl := l.withChecksums(true)
	plain := l.withChecksums(false)
	if ckl.extOff+nvm.LineSize <= plain.metaSize && dev.Size() >= ckl.extOff+nvm.LineSize &&
		binary.LittleEndian.Uint64(w[ckl.extOff+extOffMagic:]) == ExtMagic {
		return true
	}
	return false
}

func (m *Meta) ext(off int) uint64 {
	return binary.LittleEndian.Uint64(m.dev.Working()[m.l.extOff+off:])
}

// Sealed reports whether the container is currently marked sealed (all
// metadata checksums authoritative). Meaningless on non-checksummed
// layouts, which report false.
func (m *Meta) Sealed() bool {
	return m.l.ck && m.ext(extOffSealFlags) == sealSealed
}

// sealWords serializes the first 24 bytes of the extension line plus their
// CRC for the given seal state.
func sealWords(epoch, flags uint64) [32]byte {
	var b [32]byte
	binary.LittleEndian.PutUint64(b[0:], ExtMagic)
	binary.LittleEndian.PutUint64(b[8:], epoch)
	binary.LittleEndian.PutUint64(b[16:], flags)
	binary.LittleEndian.PutUint64(b[24:], crc64.Checksum(b[:24], crcTable))
	return b
}

// unseal durably marks the container unsealed before a metadata mutation.
// The fence is essential: without it a crash could persist the mutation
// while dropping the unseal, making a legally mid-epoch image look like a
// corrupt sealed one.
func (m *Meta) unseal() {
	if !m.l.ck || !m.Sealed() {
		return
	}
	b := sealWords(m.ext(extOffSealEpoch), sealUnsealed)
	m.dev.Store(m.l.extOff, b[:])
	m.dev.FlushRange(m.l.extOff, len(b))
	m.dev.SFence()
}

// structCRCs computes the whole-structure CRC words from the current
// working view: header, the two segment-state arrays, and the pairing
// table.
func (m *Meta) structCRCs() (hdr, seg0, seg1, pairs uint64) {
	w := m.dev.Working()
	l := m.l
	hdr = crc64.Checksum(w[0:offFlags+4], crcTable)
	seg0 = crc64.Checksum(w[l.segStateOff(0):l.segStateOff(0)+l.NMain], crcTable)
	seg1 = crc64.Checksum(w[l.segStateOff(1):l.segStateOff(1)+l.NMain], crcTable)
	pairs = crc64.Checksum(w[l.backupToMainOff(0):l.backupToMainOff(0)+4*l.NBackup], crcTable)
	return
}

// writeShadow serializes and stores the redundant metadata copy (volatile
// store; the caller flushes).
func (m *Meta) writeShadow(epoch uint64) {
	w := m.dev.Working()
	l := m.l
	buf := make([]byte, l.shadowLen)
	n := copy(buf, w[0:shadowHeaderLen])
	n += copy(buf[n:], w[l.segStateOff(0):l.segStateOff(0)+2*l.NMain])
	n += copy(buf[n:], w[l.backupToMainOff(0):l.backupToMainOff(0)+4*l.NBackup])
	binary.LittleEndian.PutUint64(buf[n:], epoch)
	n += 8
	binary.LittleEndian.PutUint64(buf[n:], crc64.Checksum(buf[:n], crcTable))
	m.dev.StoreBulk(l.shadowOff, buf)
}

// Seal re-establishes the checksummed quiescent state: it recomputes every
// structure CRC, rewrites the shadow copy, makes both durable, and then
// atomically flips the seal line to "sealed". A crash anywhere inside Seal
// leaves the container either unsealed (validated by the relaxed rules) or
// fully sealed — the seal words share one cache line, so the flip itself
// is crash-atomic. No-op on non-checksummed layouts.
func (m *Meta) Seal() {
	if !m.l.ck {
		return
	}
	l := m.l
	e := m.CommittedEpoch()
	hdr, seg0, seg1, pairs := m.structCRCs()
	var crcs [32]byte
	binary.LittleEndian.PutUint64(crcs[0:], hdr)
	binary.LittleEndian.PutUint64(crcs[8:], seg0)
	binary.LittleEndian.PutUint64(crcs[16:], seg1)
	binary.LittleEndian.PutUint64(crcs[24:], pairs)
	m.dev.Store(l.extOff+extOffCRCHeader, crcs[:])
	m.writeShadow(e)
	m.dev.FlushRange(l.extOff+extOffCRCHeader, 32)
	m.dev.FlushRange(l.shadowOff, l.shadowLen)
	m.dev.SFence()
	b := sealWords(e, sealSealed)
	m.dev.Store(l.extOff, b[:])
	m.dev.FlushRange(l.extOff, len(b))
	m.dev.SFence()
}

// epochCRCOK verifies the committed epoch against its inline CRC. Valid at
// every crash point: the pair is stored and flushed as one line-contained
// write.
func epochCRCOK(w []byte) bool {
	return crc64.Checksum(w[offCommitted:offCommitted+8], crcTable) ==
		binary.LittleEndian.Uint64(w[offEpochCRC:])
}

// shadowImage returns the shadow bytes and whether their trailing CRC
// verifies.
func shadowImage(w []byte, l *Layout) (buf []byte, ok bool) {
	buf = w[l.shadowOff:l.shadowEnd()]
	crc := binary.LittleEndian.Uint64(buf[len(buf)-8:])
	return buf, crc64.Checksum(buf[:len(buf)-8], crcTable) == crc
}

// validateChecksums returns the checksum-rule violations of a checksummed
// container image, applying the sealed or unsealed rule set as recorded on
// media. The layout must already carry the extension (l.Checksummed()).
func validateChecksums(dev *nvm.Device, l *Layout) []string {
	var issues []string
	w := dev.Working()
	ext := w[l.extOff : l.extOff+nvm.LineSize]

	sealOK := binary.LittleEndian.Uint64(ext[extOffMagic:]) == ExtMagic &&
		crc64.Checksum(ext[:extOffSealCRC], crcTable) == binary.LittleEndian.Uint64(ext[extOffSealCRC:])
	flags := binary.LittleEndian.Uint64(ext[extOffSealFlags:])
	if sealOK && flags != sealSealed && flags != sealUnsealed {
		sealOK = false
	}
	if !sealOK {
		issues = append(issues, "checksum extension: seal line corrupt")
	}
	if !epochCRCOK(w) {
		issues = append(issues, fmt.Sprintf("committed epoch %d fails its inline CRC",
			binary.LittleEndian.Uint64(w[offCommitted:])))
	}
	if !sealOK || flags != sealSealed {
		// Unsealed (or undecidable) image: whole-structure CRCs and the
		// shadow are legally out of date; nothing more is checkable here.
		return issues
	}

	epoch := binary.LittleEndian.Uint64(w[offCommitted:])
	if se := binary.LittleEndian.Uint64(ext[extOffSealEpoch:]); se != epoch {
		issues = append(issues, fmt.Sprintf("sealed at epoch %d but committed epoch is %d", se, epoch))
	}
	m := &Meta{dev: dev, l: l}
	hdr, seg0, seg1, pairs := m.structCRCs()
	for _, c := range []struct {
		name string
		got  uint64
		off  int
	}{
		{"header", hdr, extOffCRCHeader},
		{"seg_state[0]", seg0, extOffCRCSeg0},
		{"seg_state[1]", seg1, extOffCRCSeg1},
		{"backup_to_main", pairs, extOffCRCPairs},
	} {
		if want := binary.LittleEndian.Uint64(ext[c.off:]); c.got != want {
			issues = append(issues, fmt.Sprintf("%s CRC mismatch: computed %#x, recorded %#x", c.name, c.got, want))
		}
	}
	shadow, shOK := shadowImage(w, l)
	if !shOK {
		issues = append(issues, "shadow metadata copy fails its CRC")
	} else if !bytes.Equal(shadow[:len(shadow)-16], primaryImage(w, l)) {
		issues = append(issues, "shadow metadata copy diverges from sealed primary")
	}
	return issues
}

// primaryImage returns the live bytes the shadow mirrors: header, both
// segment-state arrays, and the pairing table (contiguous on media).
func primaryImage(w []byte, l *Layout) []byte {
	return w[0 : l.backupToMainOff(0)+4*l.NBackup]
}
