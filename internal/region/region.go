// Package region implements libcrpm's compacted persistent memory layout
// (paper §3.3, Figure 4): a metadata block followed by a main region and a
// backup region, both divided into segments (copy-on-write granularity) that
// are further divided into blocks (data-copy granularity).
//
// The metadata holds the two crash-consistency data structures of the
// protocol: the backup-to-main-segment mapping array and the two segment
// state arrays selected by committed_epoch parity.
package region

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"

	"libcrpm/internal/nvm"
)

// Magic identifies a formatted libcrpm container.
const Magic uint64 = 0x4352504d4c415954 // "CRPMLAYT"

// Version is the on-media layout version.
const Version uint32 = 1

// SegState is the per-main-segment state recorded in the segment state
// arrays (§3.3).
type SegState uint8

const (
	// SSInitial: the segment does not store program state yet.
	SSInitial SegState = 0
	// SSMain: the main segment holds the checkpoint state.
	SSMain SegState = 1
	// SSBackup: the paired backup segment holds the checkpoint state.
	SSBackup SegState = 2
)

// String returns the state mnemonic.
func (s SegState) String() string {
	switch s {
	case SSInitial:
		return "SS_Initial"
	case SSMain:
		return "SS_Main"
	case SSBackup:
		return "SS_Backup"
	default:
		return fmt.Sprintf("SegState(%d)", uint8(s))
	}
}

// NoPair marks a free backup_to_main entry.
const NoPair = ^uint32(0)

// Default geometry, matching the paper's defaults.
const (
	// DefaultSegmentSize is the copy-on-write granularity (2 MB).
	DefaultSegmentSize = 2 << 20
	// DefaultBlockSize is the data-copy granularity (256 B).
	DefaultBlockSize = 256
)

// Config selects a container geometry.
type Config struct {
	// HeapSize is the application-visible capacity (= main region size).
	// Rounded up to a whole number of segments.
	HeapSize int
	// SegmentSize is the copy-on-write granularity. Must be a power of two
	// and a multiple of BlockSize.
	SegmentSize int
	// BlockSize is the data-copy granularity. Must be a power of two and a
	// multiple of the cache-line size.
	BlockSize int
	// BackupRatio is nr_backup_segs / nr_main_segs in (0, 1]. It bounds the
	// number of segments that may be modified in one epoch.
	BackupRatio float64
	// Checksums enables the metadata checksum extension: CRC64 words over
	// the header, segment-state arrays, and pairing table, plus a redundant
	// shadow copy, maintained by a seal/unseal protocol (see checksum.go).
	// Opt-in; a plain container's on-media format is byte-identical to v1.
	Checksums bool
}

// WithDefaults fills unset fields with the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.SegmentSize == 0 {
		c.SegmentSize = DefaultSegmentSize
	}
	if c.BlockSize == 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.BackupRatio == 0 {
		c.BackupRatio = 1.0
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.HeapSize <= 0 {
		return errors.New("region: HeapSize must be positive")
	}
	if c.SegmentSize <= 0 || c.SegmentSize&(c.SegmentSize-1) != 0 {
		return fmt.Errorf("region: SegmentSize %d is not a positive power of two", c.SegmentSize)
	}
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("region: BlockSize %d is not a positive power of two", c.BlockSize)
	}
	if c.BlockSize%nvm.LineSize != 0 {
		return fmt.Errorf("region: BlockSize %d is not a multiple of the %d-byte cache line", c.BlockSize, nvm.LineSize)
	}
	if c.SegmentSize%c.BlockSize != 0 {
		return fmt.Errorf("region: SegmentSize %d is not a multiple of BlockSize %d", c.SegmentSize, c.BlockSize)
	}
	if c.BackupRatio <= 0 || c.BackupRatio > 1 {
		return fmt.Errorf("region: BackupRatio %v outside (0, 1]", c.BackupRatio)
	}
	return nil
}

// Layout is the resolved geometry of a container inside one device.
type Layout struct {
	SegSize int
	BlkSize int
	NMain   int
	NBackup int

	ck        bool // metadata checksum extension present
	metaFixed int  // fixed header bytes before seg_state[0]
	extOff    int  // checksum extension line (ck only)
	shadowOff int  // redundant metadata copy (ck only)
	shadowLen int

	metaSize  int
	mainOff   int
	backupOff int
}

// NewLayout resolves a configuration into a concrete layout.
func NewLayout(c Config) (*Layout, error) {
	c = c.WithDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	nMain := (c.HeapSize + c.SegmentSize - 1) / c.SegmentSize
	nBackup := int(float64(nMain)*c.BackupRatio + 0.5)
	if nBackup < 1 {
		nBackup = 1
	}
	if nBackup > nMain {
		nBackup = nMain
	}
	l := &Layout{SegSize: c.SegmentSize, BlkSize: c.BlockSize, NMain: nMain, NBackup: nBackup, ck: c.Checksums}
	l.resolveOffsets()
	return l, nil
}

// resolveOffsets derives every offset field from the geometry and the
// checksum flag. Called again whenever Open discovers the on-media format
// differs from the configured one.
func (l *Layout) resolveOffsets() {
	l.metaFixed = metaFixedSize
	if l.ck {
		l.metaFixed = ckMetaFixedSize
	}
	meta := l.metaFixed + 2*l.NMain + 4*l.NBackup
	if l.ck {
		l.extOff = align(meta, nvm.LineSize)
		l.shadowOff = l.extOff + nvm.LineSize
		l.shadowLen = shadowHeaderLen + 2*l.NMain + 4*l.NBackup + 16
		meta = l.shadowOff + l.shadowLen
	} else {
		l.extOff, l.shadowOff, l.shadowLen = 0, 0, 0
	}
	// Align regions to the media granularity so segment copies never share
	// cache lines with metadata.
	l.metaSize = align(meta, 4096)
	l.mainOff = l.metaSize
	l.backupOff = l.mainOff + l.NMain*l.SegSize
}

func align(n, a int) int { return (n + a - 1) / a * a }

// Metadata field offsets.
const (
	offMagic      = 0
	offVersion    = 8
	offSegSize    = 12
	offBlkSize    = 16
	offNMain      = 20
	offNBackup    = 24
	offCommitted  = 32
	metaFixedSize = 40
	// seg_state[0] starts at metaFixedSize, seg_state[1] follows, then
	// backup_to_main.
)

// DeviceSize returns the total device bytes the layout occupies.
func (l *Layout) DeviceSize() int { return l.backupOff + l.NBackup*l.SegSize }

// HeapSize returns the application-visible capacity.
func (l *Layout) HeapSize() int { return l.NMain * l.SegSize }

// MetadataSize returns the metadata footprint in bytes (unaligned, §5.6).
// With the checksum extension it additionally counts the extension line and
// the shadow copy; for plain containers it is the paper's formula exactly.
func (l *Layout) MetadataSize() int {
	if l.ck {
		return l.shadowEnd()
	}
	return metaFixedSize + 2*l.NMain + 4*l.NBackup
}

// MainOff returns the device offset of main segment i.
func (l *Layout) MainOff(i int) int { return l.mainOff + i*l.SegSize }

// BackupOff returns the device offset of backup segment j.
func (l *Layout) BackupOff(j int) int { return l.backupOff + j*l.SegSize }

// HeapToDevice converts a heap offset (application view) to a device offset
// in the main region.
func (l *Layout) HeapToDevice(off int) int { return l.mainOff + off }

// SegOf returns the main segment index containing heap offset off.
func (l *Layout) SegOf(off int) int { return off / l.SegSize }

// BlockOf returns the global block index containing heap offset off.
func (l *Layout) BlockOf(off int) int { return off / l.BlkSize }

// BlocksPerSeg returns the number of blocks per segment.
func (l *Layout) BlocksPerSeg() int { return l.SegSize / l.BlkSize }

// TotalBlocks returns the number of blocks in the main region.
func (l *Layout) TotalBlocks() int { return l.NMain * l.BlocksPerSeg() }

func (l *Layout) segStateOff(arr int) int { return l.metaFixed + arr*l.NMain }

func (l *Layout) backupToMainOff(j int) int { return l.metaFixed + 2*l.NMain + 4*j }

// Meta provides typed access to the persistent metadata of a container on a
// device. Mutators perform cached stores; callers are responsible for the
// flush/fence protocol.
type Meta struct {
	dev *nvm.Device
	l   *Layout
}

// Format initializes a fresh container: magic, geometry, epoch 0, all
// segment states SS_Initial, all backup pairs free. The metadata is flushed
// and fenced before Format returns.
func Format(dev *nvm.Device, l *Layout) (*Meta, error) {
	if dev.Size() < l.DeviceSize() {
		return nil, fmt.Errorf("region: device %d bytes, layout needs %d", dev.Size(), l.DeviceSize())
	}
	m := &Meta{dev: dev, l: l}
	var b8 [8]byte
	var b4 [4]byte
	binary.LittleEndian.PutUint64(b8[:], Magic)
	dev.Store(offMagic, b8[:])
	binary.LittleEndian.PutUint32(b4[:], Version)
	dev.Store(offVersion, b4[:])
	binary.LittleEndian.PutUint32(b4[:], uint32(l.SegSize))
	dev.Store(offSegSize, b4[:])
	binary.LittleEndian.PutUint32(b4[:], uint32(l.BlkSize))
	dev.Store(offBlkSize, b4[:])
	binary.LittleEndian.PutUint32(b4[:], uint32(l.NMain))
	dev.Store(offNMain, b4[:])
	binary.LittleEndian.PutUint32(b4[:], uint32(l.NBackup))
	dev.Store(offNBackup, b4[:])
	if l.ck {
		binary.LittleEndian.PutUint32(b4[:], flagChecksums)
		dev.Store(offFlags, b4[:])
	}
	binary.LittleEndian.PutUint64(b8[:], 0)
	dev.Store(offCommitted, b8[:])
	if l.ck {
		binary.LittleEndian.PutUint64(b8[:], crc64.Checksum(make([]byte, 8), crcTable))
		dev.Store(offEpochCRC, b8[:])
	}
	zero := make([]byte, 2*l.NMain)
	dev.StoreBulk(l.segStateOff(0), zero)
	free := make([]byte, 4*l.NBackup)
	for j := 0; j < l.NBackup; j++ {
		binary.LittleEndian.PutUint32(free[4*j:], NoPair)
	}
	dev.StoreBulk(l.backupToMainOff(0), free)
	if l.ck {
		sw := sealWords(0, sealUnsealed)
		dev.Store(l.extOff, sw[:])
	}
	dev.FlushRange(0, l.MetadataSize())
	dev.SFence()
	if l.ck {
		m.Seal()
	}
	return m, nil
}

// Open validates an existing container's metadata against the layout.
//
// The checksum extension is a sticky on-media property: if the container's
// format disagrees with l's Checksums setting, l is adjusted in place (and
// all derived offsets recomputed) to match the media, so callers keep using
// the same *Layout they passed in.
func Open(dev *nvm.Device, l *Layout) (*Meta, error) {
	if dev.Size() < l.DeviceSize() {
		return nil, fmt.Errorf("region: device %d bytes, layout needs %d", dev.Size(), l.DeviceSize())
	}
	w := dev.Working()
	if got := binary.LittleEndian.Uint64(w[offMagic:]); got != Magic {
		return nil, fmt.Errorf("region: bad magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(w[offVersion:]); got != Version {
		return nil, fmt.Errorf("region: unsupported version %d", got)
	}
	check := func(off int, want int, name string) error {
		if got := int(binary.LittleEndian.Uint32(w[off:])); got != want {
			return fmt.Errorf("region: %s mismatch: on-media %d, layout %d", name, got, want)
		}
		return nil
	}
	if err := check(offSegSize, l.SegSize, "segment size"); err != nil {
		return nil, err
	}
	if err := check(offBlkSize, l.BlkSize, "block size"); err != nil {
		return nil, err
	}
	if err := check(offNMain, l.NMain, "main segment count"); err != nil {
		return nil, err
	}
	if err := check(offNBackup, l.NBackup, "backup segment count"); err != nil {
		return nil, err
	}
	if on := DetectChecksums(dev, l); on != l.ck {
		l.ck = on
		l.resolveOffsets()
		if dev.Size() < l.DeviceSize() {
			return nil, fmt.Errorf("region: device %d bytes, checksummed layout needs %d", dev.Size(), l.DeviceSize())
		}
	}
	return &Meta{dev: dev, l: l}, nil
}

// Layout returns the geometry.
func (m *Meta) Layout() *Layout { return m.l }

// CommittedEpoch reads the committed epoch counter.
func (m *Meta) CommittedEpoch() uint64 {
	return binary.LittleEndian.Uint64(m.dev.Working()[offCommitted:])
}

// SetCommittedEpoch stores and flushes (but does not fence) the epoch
// counter. The 8-byte store is line-contained and therefore atomic with
// respect to crashes. With checksums enabled, the epoch's inline CRC lives
// in the same cache line and is updated by the same store, so the pair
// stays verifiable at every crash point.
func (m *Meta) SetCommittedEpoch(e uint64) {
	m.unseal()
	if m.l.ck {
		var b [16]byte
		binary.LittleEndian.PutUint64(b[:8], e)
		binary.LittleEndian.PutUint64(b[8:], crc64.Checksum(b[:8], crcTable))
		m.dev.Store(offCommitted, b[:])
		m.dev.FlushRange(offCommitted, 16)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], e)
	m.dev.Store(offCommitted, b[:])
	m.dev.FlushRange(offCommitted, 8)
}

// SegState reads entry i of segment state array arr (0 or 1).
func (m *Meta) SegState(arr, i int) SegState {
	return SegState(m.dev.Working()[m.l.segStateOff(arr)+i])
}

// SetSegState stores entry i of array arr without flushing.
func (m *Meta) SetSegState(arr, i int, s SegState) {
	m.unseal()
	m.dev.Store(m.l.segStateOff(arr)+i, []byte{byte(s)})
}

// FlushSegState flushes entry i of array arr.
func (m *Meta) FlushSegState(arr, i int) {
	m.dev.FlushRange(m.l.segStateOff(arr)+i, 1)
}

// CopySegStateArray bulk-copies array src into array dst (volatile store;
// caller flushes via FlushSegStateArray).
func (m *Meta) CopySegStateArray(dst, src int) {
	m.unseal()
	w := m.dev.Working()
	buf := make([]byte, m.l.NMain)
	copy(buf, w[m.l.segStateOff(src):m.l.segStateOff(src)+m.l.NMain])
	m.dev.StoreBulk(m.l.segStateOff(dst), buf)
}

// FlushSegStateArray flushes the whole array arr.
func (m *Meta) FlushSegStateArray(arr int) {
	m.dev.FlushRange(m.l.segStateOff(arr), m.l.NMain)
}

// BackupToMain reads the paired main segment of backup j, or NoPair.
func (m *Meta) BackupToMain(j int) uint32 {
	return binary.LittleEndian.Uint32(m.dev.Working()[m.l.backupToMainOff(j):])
}

// SetBackupToMain stores and flushes the pairing entry for backup j.
func (m *Meta) SetBackupToMain(j int, main uint32) {
	m.unseal()
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], main)
	m.dev.Store(m.l.backupToMainOff(j), b[:])
	m.dev.FlushRange(m.l.backupToMainOff(j), 4)
}
