package region

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"strings"

	"libcrpm/internal/nvm"
)

// ErrUnrepairable means metadata corruption was detected that the redundant
// copy cannot fix (more than one independent structure is damaged, or the
// damage hit an unsealed image whose shadow is legally stale).
var ErrUnrepairable = errors.New("region: metadata corruption is not repairable")

// Validate verifies the checksum rules of the container on dev, using the
// sealed or unsealed rule set recorded on media. Containers without the
// checksum extension validate trivially. It never modifies the device.
func Validate(dev *nvm.Device, l *Layout) error {
	l = l.withChecksums(DetectChecksums(dev, l))
	if !l.Checksummed() {
		return nil
	}
	if dev.Size() < l.DeviceSize() {
		return fmt.Errorf("region: device %d bytes, checksummed layout needs %d", dev.Size(), l.DeviceSize())
	}
	if issues := validateChecksums(dev, l); len(issues) > 0 {
		return fmt.Errorf("region: metadata checksum validation failed: %s", strings.Join(issues, "; "))
	}
	return nil
}

// RepairReport lists the actions a Repair run performed.
type RepairReport struct {
	// Actions describe each repair, in order. Empty means the metadata
	// already validated and nothing was touched.
	Actions []string
}

// String renders the report.
func (r RepairReport) String() string {
	if len(r.Actions) == 0 {
		return "nothing to repair\n"
	}
	var b strings.Builder
	for _, a := range r.Actions {
		fmt.Fprintf(&b, "repaired: %s\n", a)
	}
	return b.String()
}

// Repair reconstructs corrupt checksummed metadata from its redundant
// copies, under the single-fault assumption (one corrupted metadata cache
// line). The rules, in order:
//
//   - The seal line is NEVER restored from the shadow: a shadow claiming
//     "sealed" over a legally mid-epoch image would resurrect stale arrays.
//     A corrupt seal line is rebuilt as UNSEALED, handing the image to the
//     ordinary protocol recovery, which is correct whenever the protocol
//     metadata itself is intact — exactly the single-fault case.
//   - The committed epoch is only ever restored from the shadow of a SEALED
//     image (there it provably equals the sealed epoch). An unsealed image
//     with a corrupt epoch line is unrepairable: the shadow's epoch may be
//     one epoch stale, and restoring it would silently recover wrong state.
//   - On a sealed image, primary structures (header, epoch, segment-state
//     arrays, pairing table) and the shadow copy repair each other:
//     whichever side fails its CRCs is rewritten from the side that
//     verifies. If the contents agree but a CRC word itself is damaged,
//     the CRC words are recomputed.
//
// Repair is idempotent and never panics on arbitrary images; it returns
// ErrUnrepairable (possibly wrapped) when no consistent state can be
// re-established.
func Repair(dev *nvm.Device, l *Layout) (RepairReport, error) {
	var rep RepairReport
	if !l.ck && !DetectChecksums(dev, l) {
		return rep, fmt.Errorf("%w: container has no checksum extension to repair from", ErrUnrepairable)
	}
	l = l.withChecksums(true)
	if dev.Size() < l.DeviceSize() {
		return rep, fmt.Errorf("%w: device %d bytes, checksummed layout needs %d", ErrUnrepairable, dev.Size(), l.DeviceSize())
	}
	m := &Meta{dev: dev, l: l}
	w := dev.Working()
	ext := w[l.extOff : l.extOff+nvm.LineSize]

	sealOK := binary.LittleEndian.Uint64(ext[extOffMagic:]) == ExtMagic &&
		crc64.Checksum(ext[:extOffSealCRC], crcTable) == binary.LittleEndian.Uint64(ext[extOffSealCRC:])
	flags := binary.LittleEndian.Uint64(ext[extOffSealFlags:])
	if sealOK && flags != sealSealed && flags != sealUnsealed {
		sealOK = false
	}

	if !sealOK {
		// Seal line corrupt. The epoch must self-validate for the rebuilt
		// unsealed image to be trustworthy.
		if !epochCRCOK(w) {
			return rep, fmt.Errorf("%w: seal line and committed epoch both corrupt", ErrUnrepairable)
		}
		m.rewriteExtLine(binary.LittleEndian.Uint64(w[offCommitted:]), sealUnsealed)
		rep.Actions = append(rep.Actions, "seal line rebuilt as unsealed (protocol recovery will re-seal)")
		return rep, nil
	}

	if flags == sealUnsealed {
		if !epochCRCOK(w) {
			return rep, fmt.Errorf("%w: unsealed image with corrupt committed epoch (shadow epoch may be stale)", ErrUnrepairable)
		}
		// Legally mid-epoch: arrays and shadow carry no verifiable state.
		return rep, nil
	}

	// Sealed image: primary and shadow repair each other.
	shadow, shOK := shadowImage(w, l)
	primary := primaryImage(w, l)
	primaryOK := len(validateChecksumsPrimary(dev, l)) == 0

	switch {
	case primaryOK && shOK && bytes.Equal(shadow[:len(shadow)-16], primary):
		return rep, nil
	case primaryOK:
		m.writeShadow(binary.LittleEndian.Uint64(w[offCommitted:]))
		dev.FlushRange(l.shadowOff, l.shadowLen)
		dev.SFence()
		rep.Actions = append(rep.Actions, "shadow metadata copy rebuilt from verified primary")
	case shOK:
		if se := binary.LittleEndian.Uint64(shadow[len(shadow)-16:]); se != binary.LittleEndian.Uint64(ext[extOffSealEpoch:]) {
			return rep, fmt.Errorf("%w: shadow sealed at epoch %d, seal line says %d", ErrUnrepairable,
				se, binary.LittleEndian.Uint64(ext[extOffSealEpoch:]))
		}
		if bytes.Equal(shadow[:len(shadow)-16], primary) {
			// Structures agree; the damaged bytes are the CRC words.
			m.rewriteExtLine(binary.LittleEndian.Uint64(ext[extOffSealEpoch:]), sealSealed)
			rep.Actions = append(rep.Actions, "checksum words recomputed from intact structures")
		} else {
			dev.StoreBulk(0, shadow[:len(shadow)-16])
			dev.FlushRange(0, len(shadow)-16)
			dev.SFence()
			m.rewriteExtLine(binary.LittleEndian.Uint64(ext[extOffSealEpoch:]), sealSealed)
			rep.Actions = append(rep.Actions, "primary metadata restored from verified shadow copy")
		}
	default:
		return rep, fmt.Errorf("%w: primary metadata and shadow copy both corrupt", ErrUnrepairable)
	}

	if issues := validateChecksums(dev, l); len(issues) > 0 {
		return rep, fmt.Errorf("%w: still invalid after repair: %s", ErrUnrepairable, strings.Join(issues, "; "))
	}
	return rep, nil
}

// rewriteExtLine rebuilds the whole extension line — seal words for the
// given state plus structure CRC words recomputed from the current primary
// content — and makes it durable.
func (m *Meta) rewriteExtLine(epoch, state uint64) {
	hdr, seg0, seg1, pairs := m.structCRCs()
	var line [64]byte
	sw := sealWords(epoch, state)
	copy(line[:32], sw[:])
	binary.LittleEndian.PutUint64(line[extOffCRCHeader:], hdr)
	binary.LittleEndian.PutUint64(line[extOffCRCSeg0:], seg0)
	binary.LittleEndian.PutUint64(line[extOffCRCSeg1:], seg1)
	binary.LittleEndian.PutUint64(line[extOffCRCPairs:], pairs)
	m.dev.Store(m.l.extOff, line[:])
	m.dev.FlushRange(m.l.extOff, len(line))
	m.dev.SFence()
}

// validateChecksumsPrimary checks only the primary structures of a sealed
// image (epoch inline CRC, header/array/pairing CRCs, seal epoch match) —
// the shadow is judged separately by the caller.
func validateChecksumsPrimary(dev *nvm.Device, l *Layout) []string {
	var issues []string
	w := dev.Working()
	ext := w[l.extOff : l.extOff+nvm.LineSize]
	if !epochCRCOK(w) {
		issues = append(issues, "epoch CRC")
	}
	epoch := binary.LittleEndian.Uint64(w[offCommitted:])
	if se := binary.LittleEndian.Uint64(ext[extOffSealEpoch:]); se != epoch {
		issues = append(issues, "seal epoch")
	}
	m := &Meta{dev: dev, l: l}
	hdr, seg0, seg1, pairs := m.structCRCs()
	for _, c := range []struct {
		name string
		got  uint64
		off  int
	}{
		{"header CRC", hdr, extOffCRCHeader},
		{"seg_state[0] CRC", seg0, extOffCRCSeg0},
		{"seg_state[1] CRC", seg1, extOffCRCSeg1},
		{"backup_to_main CRC", pairs, extOffCRCPairs},
	} {
		if binary.LittleEndian.Uint64(ext[c.off:]) != c.got {
			issues = append(issues, c.name)
		}
	}
	return issues
}
