package region

import (
	"strings"
	"testing"

	"libcrpm/internal/nvm"
)

func checkedLayout(t *testing.T) (*nvm.Device, *Layout, *Meta) {
	t.Helper()
	l := mustLayout(t, Config{HeapSize: 4 << 20, SegmentSize: 1 << 20, BlockSize: 256, BackupRatio: 1})
	dev := nvm.NewDevice(l.DeviceSize())
	m, err := Format(dev, l)
	if err != nil {
		t.Fatal(err)
	}
	return dev, l, m
}

func TestCheckFreshContainer(t *testing.T) {
	dev, l, _ := checkedLayout(t)
	r := Check(dev, l, true)
	if !r.OK() {
		t.Fatalf("fresh container flagged:\n%s", r)
	}
	if r.CommittedEpoch != 0 || r.PairedBackups != 0 {
		t.Fatalf("epoch=%d pairs=%d", r.CommittedEpoch, r.PairedBackups)
	}
	if !strings.Contains(r.String(), "consistent") {
		t.Fatalf("report: %s", r)
	}
}

func TestCheckUnformatted(t *testing.T) {
	l := mustLayout(t, Config{HeapSize: 1 << 20, SegmentSize: 1 << 20, BlockSize: 256, BackupRatio: 1})
	r := Check(nvm.NewDevice(l.DeviceSize()), l, false)
	if r.OK() {
		t.Fatal("unformatted device passed")
	}
}

func TestCheckDetectsBadSegState(t *testing.T) {
	dev, l, m := checkedLayout(t)
	m.SetSegState(0, 1, SegState(7))
	r := Check(dev, l, false)
	if r.OK() {
		t.Fatal("undefined segment state not flagged")
	}
	if !strings.Contains(strings.Join(r.Issues, "\n"), "undefined state") {
		t.Fatalf("issues: %v", r.Issues)
	}
}

func TestCheckDetectsDuplicatePairing(t *testing.T) {
	dev, l, m := checkedLayout(t)
	m.SetBackupToMain(0, 2)
	m.SetBackupToMain(1, 2)
	r := Check(dev, l, false)
	if r.OK() {
		t.Fatal("duplicate pairing not flagged")
	}
}

func TestCheckDetectsOutOfRangePairing(t *testing.T) {
	dev, l, m := checkedLayout(t)
	m.SetBackupToMain(0, 99)
	r := Check(dev, l, false)
	if r.OK() {
		t.Fatal("out-of-range pairing not flagged")
	}
}

func TestCheckDetectsOrphanBackupState(t *testing.T) {
	dev, l, m := checkedLayout(t)
	m.SetSegState(0, 1, SSBackup) // active array (epoch 0), no pairing
	r := Check(dev, l, false)
	if r.OK() {
		t.Fatal("SS_Backup without a pair not flagged")
	}
}

func TestCheckDeepReportsDivergence(t *testing.T) {
	dev, l, m := checkedLayout(t)
	m.SetBackupToMain(0, 1)
	dev.Store(l.MainOff(1), []byte{1, 2, 3}) // diverge the pair
	r := Check(dev, l, true)
	if !r.OK() {
		t.Fatalf("divergence must be info, not an issue:\n%s", r)
	}
	if !strings.Contains(strings.Join(r.Info, "\n"), "diverges") {
		t.Fatalf("info: %v", r.Info)
	}
}

func TestCheckGeometryMismatch(t *testing.T) {
	dev, _, _ := checkedLayout(t)
	l2 := mustLayout(t, Config{HeapSize: 4 << 20, SegmentSize: 2 << 20, BlockSize: 256, BackupRatio: 1})
	r := Check(dev, l2, false)
	if r.OK() {
		t.Fatal("geometry mismatch not flagged")
	}
}
