package torture

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"libcrpm/internal/server"
	"libcrpm/internal/workload"
)

func serviceBase() server.Config {
	return server.Config{
		Shards:   3,
		Clients:  4,
		Mix:      workload.YCSBCrud, // exercises the full KV surface
		Ops:      500,
		Keys:     150,
		HeapSize: 1 << 20,
		Buckets:  1 << 9,
		BatchOps: 128,
		Policy:   server.OpsPolicy{Every: 160},
		Seed:     7,
	}
}

// TestServiceSweep is the acceptance sweep for the sharded service:
// crashes across the serving phase of multiple shards, under seeded and
// adversarial crash schedules, must always recover every shard to one
// global epoch with every pre-cut acked op intact — and the recovered
// service must keep serving.
func TestServiceSweep(t *testing.T) {
	cfg := ServiceConfig{
		Server:      serviceBase(),
		CrashShards: []int{0, 2},
		Policies:    append(StandardPolicies(7), AdversarialPolicy()),
	}
	res, err := ServiceSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays == 0 {
		t.Fatal("sweep ran no replays")
	}
	for combo, pts := range res.Points {
		if pts < 8 {
			t.Fatalf("combo %s tested only %d points", combo, pts)
		}
	}
	if !res.OK() {
		t.Fatalf("%d violations (of %d replays), first: %v", len(res.Violations), res.Replays, res.Violations[0])
	}
}

// TestServiceSweepIncremental points the same sweep at the incremental cut
// pipeline: under a pause policy most crash points land inside an in-flight
// cut — mid-flush, between commit and replay, or mid-lift — and every one
// must still recover to a consistent global epoch with all pre-cut acked
// ops intact.
func TestServiceSweepIncremental(t *testing.T) {
	srv := serviceBase()
	srv.Policy = server.NewPausePolicy(2 * time.Microsecond)
	cfg := ServiceConfig{
		Server:      srv,
		CrashShards: []int{0, 2},
		Policies:    append(StandardPolicies(7), AdversarialPolicy()),
	}
	res, err := ServiceSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays == 0 {
		t.Fatal("sweep ran no replays")
	}
	for combo, pts := range res.Points {
		if pts < 8 {
			t.Fatalf("combo %s tested only %d points", combo, pts)
		}
	}
	if !res.OK() {
		t.Fatalf("%d violations (of %d replays), first: %v", len(res.Violations), res.Replays, res.Violations[0])
	}
}

// TestServiceSweepKillPrimary is the acceptance sweep for failover: with
// every shard replicated, crashes strided across two shards' serving
// spans — under the pause policy, so many land inside in-flight
// incremental cuts — must always promote a secondary, converge every
// shard on one epoch, and lose or double-apply nothing acked across a
// cut, for each SLA spec in the matrix.
func TestServiceSweepKillPrimary(t *testing.T) {
	srv := serviceBase()
	srv.Replicas = 2
	srv.Policy = server.NewPausePolicy(2 * time.Microsecond)
	cfg := ServiceConfig{
		Server:      srv,
		CrashShards: []int{0, 2},
		Policies:    StandardPolicies(7),
		KillPrimary: true,
		SLAs:        []string{"mix", "strong", "bounded:1"},
	}
	res, err := ServiceSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays == 0 {
		t.Fatal("sweep ran no replays")
	}
	for _, spec := range cfg.SLAs {
		for _, sh := range cfg.CrashShards {
			key := fmt.Sprintf("shard%d/%s/%s", sh, StandardPolicies(7)[0].Name, spec)
			if res.Points[key] < 8 {
				t.Fatalf("combo %s tested only %d points", key, res.Points[key])
			}
		}
	}
	if !res.OK() {
		t.Fatalf("%d violations (of %d replays), first: %v", len(res.Violations), res.Replays, res.Violations[0])
	}
}

// TestServiceSweepKillPrimaryValidation: the failover mode's config
// contract — no replicas means no kill-primary, and the SLA dimension
// exists only there.
func TestServiceSweepKillPrimaryValidation(t *testing.T) {
	cfg := ServiceConfig{Server: serviceBase(), KillPrimary: true}
	if _, err := ServiceSweep(cfg); err == nil {
		t.Fatal("kill-primary without replicas should fail")
	}
	cfg = ServiceConfig{Server: serviceBase(), SLAs: []string{"mix"}}
	if _, err := ServiceSweep(cfg); err == nil {
		t.Fatal("SLA dimension without kill-primary should fail")
	}
	srv := serviceBase()
	srv.Replicas = 1
	cfg = ServiceConfig{Server: srv, KillPrimary: true, SLAs: []string{"nope"}}
	if _, err := ServiceSweep(cfg); err == nil {
		t.Fatal("unparsable sweep SLA should fail")
	}
}

// TestServiceSweepDeterministicReport: the violation report (here: the
// pass/fail counters) is identical at any replay parallelism.
func TestServiceSweepDeterministicReport(t *testing.T) {
	base := ServiceConfig{
		Server:      serviceBase(),
		CrashShards: []int{1},
		Stride:      977, // a handful of points; this test is about report identity
	}
	serial, par := base, base
	serial.Parallel = 1
	par.Parallel = 8
	a, err := ServiceSweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServiceSweep(par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Replays != b.Replays || len(a.Violations) != len(b.Violations) {
		t.Fatalf("serial (%d replays, %d violations) != parallel (%d, %d)",
			a.Replays, len(a.Violations), b.Replays, len(b.Violations))
	}
	for i := range a.Violations {
		if a.Violations[i] != b.Violations[i] {
			t.Fatalf("violation %d differs: %v vs %v", i, a.Violations[i], b.Violations[i])
		}
	}
	for k, v := range a.Points {
		if b.Points[k] != v {
			t.Fatalf("points %s: %d vs %d", k, v, b.Points[k])
		}
	}
}

// TestServiceSweepKillPrimaryDeterministicReport: the kill-primary
// report, promotions included, is byte-identical at replay parallelism
// 1 and 8 — the CI failover byte-identity gate.
func TestServiceSweepKillPrimaryDeterministicReport(t *testing.T) {
	srv := serviceBase()
	srv.Replicas = 2
	base := ServiceConfig{
		Server:      srv,
		CrashShards: []int{1},
		Stride:      977,
		KillPrimary: true,
		SLAs:        []string{"mix"},
	}
	serial, par := base, base
	serial.Parallel = 1
	par.Parallel = 8
	a, err := ServiceSweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServiceSweep(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("serial and parallel kill-primary reports differ:\n%+v\nvs\n%+v", a, b)
	}
	if a.Replays == 0 {
		t.Fatal("sweep ran no replays")
	}
	if !a.OK() {
		t.Fatalf("%d violations, first: %v", len(a.Violations), a.Violations[0])
	}
}
