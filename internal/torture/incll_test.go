package torture

import (
	"testing"
)

// TestInCLLSweep is the acceptance sweep for the incll backend: every
// strided crash point, under the three standard policies plus the
// alternating adversary, across the media-fault grid — zero violations,
// with recovery landing byte-exactly on the committed shadow and the
// container staying live.
func TestInCLLSweep(t *testing.T) {
	stride := 3
	if testing.Short() {
		stride = 17
	}
	cfg := Config{
		Steps:     120,
		CkptEvery: 30,
		Stride:    stride,
		Modes:     []Mode{InCLLMode()},
		Policies:  append(StandardPolicies(1), AdversarialPolicy()),
		Faults:    append([]Fault{{}}, InCLLFaults()...),
		Liveness:  true,
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays == 0 {
		t.Fatal("sweep ran no replays")
	}
	// 4 policies x 3 fault cells (none, rot-dead-all, rot-dead-alt).
	if want := 4 * 3; len(res.Points) != want {
		t.Fatalf("grid has %d cells, want %d: %v", len(res.Points), want, res.Points)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestInCLLSweepParallelMatchesSerial pins the report byte-identical at
// any parallelism, fault axis included.
func TestInCLLSweepParallelMatchesSerial(t *testing.T) {
	run := func(parallel int) Result {
		res, err := Sweep(Config{
			Steps:     60,
			CkptEvery: 20,
			Stride:    11,
			Modes:     []Mode{InCLLMode()},
			Faults:    InCLLFaults(),
			Parallel:  parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if serial.Replays != parallel.Replays || len(serial.Violations) != len(parallel.Violations) {
		t.Fatalf("serial %d replays/%d violations, parallel %d/%d",
			serial.Replays, len(serial.Violations), parallel.Replays, len(parallel.Violations))
	}
	for i := range serial.Violations {
		if serial.Violations[i] != parallel.Violations[i] {
			t.Fatalf("violation %d differs: %v vs %v", i, serial.Violations[i], parallel.Violations[i])
		}
	}
}
