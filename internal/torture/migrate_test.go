package torture

import (
	"strings"
	"testing"

	"libcrpm/internal/server"
)

func migBase() server.Config {
	return server.Config{
		Shards:   2,
		Clients:  2,
		Ops:      6000,
		Keys:     2000,
		BatchOps: 256,
		Policy:   server.OpsPolicy{Every: 1024},
		Seed:     7,
		Migrations: []server.MigrateSpec{
			{Kind: server.MigrateSplit, Src: 0, AfterCuts: 2},
		},
	}
}

// TestMigrateSweepSplit crash-injects across every phase window of a live
// split — mid-transfer, mid-catch-up, and around the ring flip, on both
// the source and the spawned destination — under all standard crash-image
// policies. Zero violations tolerated.
func TestMigrateSweepSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("migration crash sweep is long")
	}
	res, err := MigrateSweep(MigrateConfig{
		Server:   migBase(),
		Stride:   97, // prime stride: sparse but phase-covering points
		Policies: StandardPolicies(migBase().Seed)[:2],
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays == 0 {
		t.Fatal("sweep ran no replays")
	}
	for _, phase := range []string{"transfer", "catchup", "flip"} {
		found := false
		for key := range res.Points {
			if strings.Contains(key, "/"+phase+"/") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no crash points in %s phase (points: %v)", phase, res.Points)
		}
	}
	if len(res.Violations) != 0 {
		max := len(res.Violations)
		if max > 5 {
			max = 5
		}
		t.Fatalf("%d violations, first %d: %+v", len(res.Violations), max, res.Violations[:max])
	}
}

// TestMigrateSweepRejects pins the input validation.
func TestMigrateSweepRejects(t *testing.T) {
	cfg := migBase()
	cfg.Migrations = nil
	if _, err := MigrateSweep(MigrateConfig{Server: cfg}); err == nil {
		t.Fatal("non-migratory config accepted")
	}
	cfg = migBase()
	cfg.Crash = &server.CrashSpec{Shard: 0, At: 1}
	if _, err := MigrateSweep(MigrateConfig{Server: cfg}); err == nil {
		t.Fatal("pre-set Crash accepted")
	}
}
