// InCLL integration: the in-cache-line-logging backend as a sweep mode,
// plus its media-fault grid. The faults corrupt everything the protocol
// declares dead (spare meta bytes, side-log slots beyond the live heads,
// halves owned by retired epochs) — recovery must be insensitive to all
// of it, at every crash point, under every policy.
package torture

import (
	"libcrpm/internal/incll"
	"libcrpm/internal/nvm"
)

// InCLLMode runs the sweep over the incll backend. The container geometry
// is taken from Config.Region.HeapSize; the rest of the region config
// (segments, blocks, checksums) is meaningless for InCLL and ignored.
func InCLLMode() Mode {
	return Mode{
		Name: "incll",
		Fresh: func(cfg Config) (*nvm.Device, System, error) {
			b, err := incll.New(cfg.Region.HeapSize)
			if err != nil {
				return nil, nil, err
			}
			return b.Device(), b, nil
		},
		Reopen: func(cfg Config, dev *nvm.Device) (System, error) {
			return incll.Open(cfg.Region.HeapSize, dev)
		},
	}
}

// InCLLFaults is the media-fault grid for the incll sweep: bit-rot over
// every dead range at once, and a crash-point-seeded half of them (so
// neighbouring grid cells damage different subsets).
func InCLLFaults() []Fault {
	corrupt := func(cfg Config, dev *nvm.Device, k int64, keep func(i int) bool) {
		ranges, err := incll.DeadRanges(dev, cfg.Region.HeapSize)
		if err != nil {
			panic(err) // becomes a violation row via the sweep's containment
		}
		for i, r := range ranges {
			if keep(i) {
				dev.CorruptRange(r.Off, r.Len)
			}
		}
	}
	return []Fault{
		{"rot-dead-all", func(cfg Config, dev *nvm.Device, k int64) {
			corrupt(cfg, dev, k, func(int) bool { return true })
		}},
		{"rot-dead-alt", func(cfg Config, dev *nvm.Device, k int64) {
			corrupt(cfg, dev, k, func(i int) bool { return (int64(i)+k)%2 == 0 })
		}},
	}
}
