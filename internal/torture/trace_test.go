package torture

import (
	"testing"
)

// quickTraceCfg is a small, strided sweep configuration used by the trace
// tests; the crash matrix itself is exercised elsewhere.
func quickTraceCfg(trace bool) Config {
	return Config{Steps: 60, CkptEvery: 20, Stride: 29, Trace: trace}
}

// TestSweepTraceOneTrackPerMode pins the torture tracing contract: with
// Config.Trace set, the result carries exactly one labelled track per mode
// (the reference run), each with checkpoint phase spans; replays stay
// untraced.
func TestSweepTraceOneTrackPerMode(t *testing.T) {
	res, err := Sweep(quickTraceCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("sweep found violations: %v", res.Violations)
	}
	if res.Trace == nil {
		t.Fatal("traced sweep returned no trace")
	}
	modes := StandardModes()
	if len(res.Trace.Tracks) != len(modes) {
		t.Fatalf("got %d tracks, want one per mode (%d)", len(res.Trace.Tracks), len(modes))
	}
	for i, tk := range res.Trace.Tracks {
		want := "torture/" + modes[i].Name + "/reference"
		if tk.Label != want {
			t.Errorf("track %d label %q, want %q", i, tk.Label, want)
		}
		found := false
		for _, s := range tk.Spans {
			if s.Name == "checkpoint" {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("track %q has no checkpoint span", tk.Label)
		}
	}
}

// TestSweepTraceDoesNotChangeOutcome pins that tracing the reference runs
// perturbs nothing: same replay count and violation report either way.
func TestSweepTraceDoesNotChangeOutcome(t *testing.T) {
	plain, err := Sweep(quickTraceCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced sweep returned a trace")
	}
	traced, err := Sweep(quickTraceCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Replays != traced.Replays {
		t.Fatalf("replay count changed under tracing: %d vs %d", plain.Replays, traced.Replays)
	}
	if len(plain.Violations) != len(traced.Violations) {
		t.Fatalf("violations changed under tracing: %v vs %v", plain.Violations, traced.Violations)
	}
}
