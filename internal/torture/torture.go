// Package torture is the adversarial crash-consistency sweep: it counts the
// device primitives of a deterministic scripted workload, then replays the
// workload once per crash point, injecting a crash after the k-th primitive
// and resolving the unguaranteed lines with an adversarial CrashPolicy
// instead of one seeded coin flip. After every crash the container is
// reopened, recovered, fsck'd with region.Check, and its heap compared
// byte-for-byte against the shadow copy of the epoch it claims to have
// recovered — so the paper's §3.4.3 claim ("recovery rebuilds a committed
// state after a crash at ANY point") is tested at every point, under every
// schedule, in every container mode.
//
// The sweep is runnable both as a Go test (internal/torture's tests) and as
// a CLI (cmd/crpmtorture) for CI.
package torture

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"

	"libcrpm/internal/ckpt"
	"libcrpm/internal/core"
	"libcrpm/internal/nvm"
	"libcrpm/internal/obs"
	"libcrpm/internal/region"
	"libcrpm/internal/sched"
)

// System is what the sweep drives: the ckpt.Backend arena contract plus
// the committed-epoch surface the shadow diff keys on. core.Container and
// the incll backend both qualify.
type System interface {
	ckpt.Backend
	CommittedEpoch() uint64
}

// Step is one deterministic workload action: an 8-byte write, or a
// checkpoint.
type Step struct {
	Off        int
	Val        uint64
	Checkpoint bool
}

// BuildScript produces a deterministic mixed workload over the heap:
// scattered 8-byte writes with periodic checkpoints, ending in a
// checkpoint so the final state is committed.
func BuildScript(seed int64, heapSize, steps, ckptEvery int) []Step {
	rng := rand.New(rand.NewSource(seed))
	var script []Step
	for i := 0; i < steps; i++ {
		if i > 0 && i%ckptEvery == 0 {
			script = append(script, Step{Checkpoint: true})
		}
		script = append(script, Step{Off: rng.Intn(heapSize/8-1) * 8, Val: rng.Uint64()})
	}
	return append(script, Step{Checkpoint: true})
}

// Mode is a named checkpoint system the sweep runs under: either a core
// container configuration (Opts) or an arbitrary backend (Fresh/Reopen).
type Mode struct {
	Name string
	// Opts builds the core container options; the sweep then constructs,
	// reopens, and fscks core containers. nil when Fresh/Reopen are set.
	Opts func(region.Config) core.Options
	// Fresh formats a non-core system on a fresh device and Reopen
	// reattaches (and recovers) after a crash. Such modes skip the
	// region fsck stage — their packages own their format checks.
	Fresh  func(cfg Config) (*nvm.Device, System, error)
	Reopen func(cfg Config, dev *nvm.Device) (System, error)
}

func (m Mode) fresh(cfg Config) (*nvm.Device, System, error) {
	if m.Fresh != nil {
		return m.Fresh(cfg)
	}
	l, err := region.NewLayout(cfg.Region)
	if err != nil {
		return nil, nil, err
	}
	dev := nvm.NewDevice(l.DeviceSize())
	c, err := core.NewContainer(dev, m.Opts(cfg.Region))
	return dev, c, err
}

func (m Mode) reopen(cfg Config, dev *nvm.Device) (System, error) {
	if m.Reopen != nil {
		return m.Reopen(cfg, dev)
	}
	return core.OpenContainer(dev, m.Opts(cfg.Region))
}

// StandardModes covers the three protocol variants of the paper: the
// default NVM-resident mode with lazy copy-on-write, the buffered DRAM
// mode, and the default mode with eager CoW forced on for every epoch.
// (The default EagerCoWSegments threshold of 64 would make small test
// geometries always-eager, so the lazy variant disables it explicitly.)
func StandardModes() []Mode {
	return []Mode{
		{Name: "default", Opts: func(r region.Config) core.Options {
			return core.Options{Region: r, Mode: core.ModeDefault, EagerCoWSegments: -1}
		}},
		{Name: "buffered", Opts: func(r region.Config) core.Options {
			return core.Options{Region: r, Mode: core.ModeBuffered}
		}},
		{Name: "eager-cow", Opts: func(r region.Config) core.Options {
			return core.Options{Region: r, Mode: core.ModeDefault, EagerCoWSegments: 1 << 30}
		}},
	}
}

// Policy is a named crash-outcome chooser; New builds the (possibly
// stateful) nvm.CrashPolicy for the replay crashing at primitive index k,
// so randomized policies are reproducible per crash point.
type Policy struct {
	Name string
	New  func(k int64) nvm.CrashPolicy
}

// StandardPolicies are the three schedules of the acceptance sweep:
// seeded-random line fates, everything persists, everything is lost.
func StandardPolicies(seed int64) []Policy {
	return []Policy{
		{"seeded", func(k int64) nvm.CrashPolicy {
			return nvm.SeededCrash(rand.New(rand.NewSource(seed ^ k)))
		}},
		{"persist-all", func(int64) nvm.CrashPolicy { return nvm.PersistAll }},
		{"drop-all", func(int64) nvm.CrashPolicy { return nvm.DropAll }},
	}
}

// AdversarialPolicy alternates line fates, flipping phase with the crash
// point, so neighbouring lines of one protocol structure get opposite
// outcomes.
func AdversarialPolicy() Policy {
	return Policy{"alternating", func(k int64) nvm.CrashPolicy {
		return nvm.Alternating(int(k & 1))
	}}
}

// Fault is a named media-fault injection applied to the crashed device
// image before reopen, adding a third sweep axis (crash point x policy x
// fault). Injections must damage only state the mode's recovery protocol
// is specified to tolerate; the shadow diff then proves recovery still
// lands byte-exactly on the committed epoch. A panic inside Inject
// becomes a violation row via the sweep's panic containment.
type Fault struct {
	Name string
	// Inject damages the post-crash media image; k is the crash point,
	// for deterministic per-point variation.
	Inject func(cfg Config, dev *nvm.Device, k int64)
}

// Config parameterizes a sweep.
type Config struct {
	// Region is the container geometry. Zero value gets a small
	// multi-segment default (16 segments of 4 KB, 256 B blocks).
	Region region.Config
	// Steps and CkptEvery shape the script (defaults 240 and 60).
	Steps, CkptEvery int
	// Seed drives the script and the seeded policy.
	Seed int64
	// Stride tests every Stride-th crash point (1 = full sweep).
	Stride int
	// Checksums runs the containers with the metadata checksum extension,
	// exercising the seal/unseal protocol at every crash point.
	Checksums bool
	// Modes and Policies select the sweep matrix; nil means the standard
	// three of each.
	Modes    []Mode
	Policies []Policy
	// Faults adds a media-fault axis: every (policy, crash point) cell is
	// additionally replayed once per fault, with the fault injected into
	// the crash image before reopen. nil keeps the fault-free grid (and
	// the report format) of earlier sweeps.
	Faults []Fault
	// Liveness additionally verifies after each recovery that the
	// container still works: one more write, checkpoint, clean restart,
	// reread.
	Liveness bool
	// Trace records phase spans (on the simulated clock) for each mode's
	// reference run into Result.Trace, one track per mode. Replays are not
	// traced: a crash-point sweep runs thousands of them, and the reference
	// run already shows where each mode's protocol time goes.
	Trace bool
	// Parallel bounds the number of crash-point replays in flight
	// (0 = GOMAXPROCS, 1 = serial). Every replay owns a fresh device and
	// reads only the shared script and shadow snapshots, and violations are
	// reduced in crash-point order, so the report is byte-identical at any
	// setting.
	Parallel int
	// Progress, if non-nil, is called after each (mode, policy) combo.
	Progress func(mode, policy string, points int, violations int)
}

func (c Config) withDefaults() Config {
	if c.Region.HeapSize == 0 {
		c.Region = region.Config{HeapSize: 16 * 4096, SegmentSize: 4096, BlockSize: 256, BackupRatio: 1.0}
	}
	c.Region.Checksums = c.Checksums
	if c.Steps == 0 {
		c.Steps = 240
	}
	if c.CkptEvery == 0 {
		c.CkptEvery = 60
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Stride <= 0 {
		c.Stride = 1
	}
	if c.Modes == nil {
		c.Modes = StandardModes()
	}
	if c.Policies == nil {
		c.Policies = StandardPolicies(c.Seed)
	}
	return c
}

// Violation is one consistency failure found by the sweep.
type Violation struct {
	Mode   string
	Policy string
	// Fault names the injected media fault; empty on the fault-free grid.
	Fault string
	// Index and Kind identify the injected crash (replayable with
	// Device.FailAfter(Index-1)).
	Index int64
	Kind  nvm.OpKind
	// Stage names the phase that failed: reopen, shadow-diff, fsck,
	// liveness.
	Stage  string
	Detail string
}

// String renders the violation with everything needed to replay it.
func (v Violation) String() string {
	combo := v.Mode + "/" + v.Policy
	if v.Fault != "" {
		combo += "/" + v.Fault
	}
	return fmt.Sprintf("[%s] crash at primitive %d (%s): %s: %s",
		combo, v.Index, v.Kind, v.Stage, v.Detail)
}

// Result summarizes a sweep.
type Result struct {
	// Points is the number of crash points tested per (mode, policy).
	Points map[string]int
	// Replays counts every crash-replay-recover cycle executed.
	Replays int
	// Violations lists every consistency failure (empty = sweep passed).
	Violations []Violation
	// Trace holds the reference runs' phase spans when Config.Trace is set
	// (one track per mode, in mode order); nil otherwise.
	Trace *obs.Trace
}

// OK reports whether the sweep found no violations.
func (r Result) OK() bool { return len(r.Violations) == 0 }

// Sweep runs the full matrix: for each mode, a reference run counts the
// script's primitives and records the shadow state of every committed
// epoch; then for each policy and each (strided) crash point the workload
// is replayed, crashed, recovered, and verified.
func Sweep(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Points: make(map[string]int)}
	script := BuildScript(cfg.Seed, cfg.Region.HeapSize, cfg.Steps, cfg.CkptEvery)

	for _, mode := range cfg.Modes {
		first, total, shadows, rec, err := reference(cfg, mode, script)
		if err != nil {
			return res, fmt.Errorf("torture: reference run (%s): %w", mode.Name, err)
		}
		if rec != nil {
			if res.Trace == nil {
				res.Trace = &obs.Trace{}
			}
			res.Trace.Add("torture/"+mode.Name+"/reference", rec)
		}
		faults := cfg.Faults
		if faults == nil {
			faults = []Fault{{}}
		}
		for _, pol := range cfg.Policies {
			for _, fault := range faults {
				var ks []int64
				for k := first; k < total; k += int64(cfg.Stride) {
					ks = append(ks, k)
				}
				// Replays fan out over the sched pool; each owns its device and
				// reads only the immutable script/shadows, and the reduction is
				// in crash-point order, so the violation list is identical to the
				// serial sweep's.
				vs := sched.Map(len(ks), sched.Options{Workers: cfg.Parallel}, func(i int) *Violation {
					return replayCell(cfg, mode, pol, fault, script, shadows, ks[i])
				})
				res.Replays += len(ks)
				for _, v := range vs {
					if v != nil {
						res.Violations = append(res.Violations, *v)
					}
				}
				key := mode.Name + "/" + pol.Name
				if fault.Name != "" {
					key += "/" + fault.Name
				}
				res.Points[key] = len(ks)
				if cfg.Progress != nil {
					bad := 0
					for _, v := range res.Violations {
						if v.Mode == mode.Name && v.Policy == pol.Name && v.Fault == fault.Name {
							bad++
						}
					}
					polName := pol.Name
					if fault.Name != "" {
						polName += "/" + fault.Name
					}
					cfg.Progress(mode.Name, polName, len(ks), bad)
				}
			}
		}
	}
	return res, nil
}

// replayCell is one scheduled replay with panic containment: a panic that
// escapes the protocol mid-replay (anything other than the injected crash
// runToCrash expects) becomes a violation row for that crash point instead
// of killing the sweep — at every parallelism level, so serial and parallel
// reports agree even on protocol bugs.
func replayCell(cfg Config, mode Mode, pol Policy, fault Fault, script []Step, shadows map[uint64][]byte, k int64) (v *Violation) {
	defer func() {
		if r := recover(); r != nil {
			v = &Violation{Mode: mode.Name, Policy: pol.Name, Fault: fault.Name, Index: k, Stage: "panic", Detail: fmt.Sprint(r)}
		}
	}()
	return replay(cfg, mode, pol, fault, script, shadows, k)
}

// reference runs the script without crashing, returning the primitive index
// of the first script operation, the total primitive count, the shadow heap
// of every committed epoch, and (when cfg.Trace) the run's phase recorder.
func reference(cfg Config, mode Mode, script []Step) (first, total int64, shadows map[uint64][]byte, rec *obs.Recorder, err error) {
	dev, c, err := mode.fresh(cfg)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	if cfg.Trace {
		rec = obs.NewRecorder(dev.Clock())
		if tb, ok := c.(obs.Traceable); ok {
			tb.SetTrace(rec)
		}
	}
	first = dev.PrimitiveCount()
	shadows = map[uint64][]byte{0: make([]byte, c.Size())}
	runScript(c, script, shadows)
	return first, dev.PrimitiveCount(), shadows, rec, nil
}

// runScript executes the script, recording in shadows the exact state each
// epoch commits. Panics (injected crashes) propagate to the caller.
func runScript(c System, script []Step, shadows map[uint64][]byte) {
	epoch := c.CommittedEpoch()
	for _, st := range script {
		if st.Checkpoint {
			if shadows != nil {
				snap := make([]byte, c.Size())
				copy(snap, c.Bytes())
				shadows[epoch+1] = snap
			}
			if err := c.Checkpoint(); err != nil {
				panic(err)
			}
			epoch++
			continue
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], st.Val)
		c.OnWrite(st.Off, 8)
		c.Write(st.Off, b[:])
	}
}

// replay reruns the script on a fresh device with a crash injected after
// primitive k, applies the policy, then recovers and verifies. Returns the
// violation found, or nil.
func replay(cfg Config, mode Mode, pol Policy, fault Fault, script []Step, shadows map[uint64][]byte, k int64) *Violation {
	dev, c, err := mode.fresh(cfg)
	if err != nil {
		return &Violation{Mode: mode.Name, Policy: pol.Name, Fault: fault.Name, Index: k, Stage: "setup", Detail: err.Error()}
	}
	// k is an absolute primitive index (counted from device creation, like
	// the reference run); the countdown starts now, after Format already
	// consumed dev.PrimitiveCount() primitives.
	dev.FailAfter(k - dev.PrimitiveCount())
	crash, ok := runToCrash(c, script)
	if !ok {
		// The countdown never fired (k beyond this run — cannot happen when
		// k < total from the reference, since runs are deterministic).
		return &Violation{Mode: mode.Name, Policy: pol.Name, Fault: fault.Name, Index: k, Stage: "setup",
			Detail: "replay diverged from reference: crash point never reached"}
	}
	dev.CrashWith(pol.New(k))
	if fault.Inject != nil {
		fault.Inject(cfg, dev, k)
	}

	v := &Violation{Mode: mode.Name, Policy: pol.Name, Fault: fault.Name, Index: crash.Index, Kind: crash.Kind}
	rc, err := mode.reopen(cfg, dev)
	if err != nil {
		v.Stage, v.Detail = "reopen", err.Error()
		return v
	}
	e := rc.CommittedEpoch()
	shadow, ok := shadows[e]
	if !ok {
		v.Stage, v.Detail = "shadow-diff", fmt.Sprintf("recovered to epoch %d, never committed by the reference", e)
		return v
	}
	if got := rc.Bytes(); !bytes.Equal(got, shadow) {
		v.Stage, v.Detail = "shadow-diff", fmt.Sprintf("heap differs from committed epoch %d at byte %d", e, firstDiff(got, shadow))
		return v
	}
	// The region fsck applies only to core containers; external backends'
	// packages own their format checks.
	if cc, isCore := rc.(*core.Container); isCore {
		if r := region.Check(dev, cc.Layout(), false); !r.OK() {
			v.Stage, v.Detail = "fsck", r.Issues[0]
			return v
		}
	}
	if cfg.Liveness {
		if detail := checkLiveness(cfg, mode, dev, rc, e); detail != "" {
			v.Stage, v.Detail = "liveness", detail
			return v
		}
	}
	return nil
}

// runToCrash executes the script expecting an injected crash; ok reports
// whether one fired.
func runToCrash(c System, script []Step) (crash nvm.InjectedCrash, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ic, isCrash := r.(nvm.InjectedCrash)
			if !isCrash {
				panic(r)
			}
			crash, ok = ic, true
		}
	}()
	runScript(c, script, nil)
	return nvm.InjectedCrash{}, false
}

// checkLiveness verifies the recovered container still functions: write,
// checkpoint, clean restart, reread.
func checkLiveness(cfg Config, mode Mode, dev *nvm.Device, c System, e uint64) string {
	const probe = uint64(0xD15EA5ED0DDBA11)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], probe)
	c.OnWrite(0, 8)
	c.Write(0, b[:])
	if err := c.Checkpoint(); err != nil {
		return fmt.Sprintf("checkpoint after recovery: %v", err)
	}
	dev.CrashDropAll()
	rc, err := mode.reopen(cfg, dev)
	if err != nil {
		return fmt.Sprintf("reopen after post-recovery checkpoint: %v", err)
	}
	if got := binary.LittleEndian.Uint64(rc.Bytes()); got != probe {
		return fmt.Sprintf("post-recovery write lost: read %#x", got)
	}
	if rc.CommittedEpoch() != e+1 {
		return fmt.Sprintf("post-recovery epoch %d, want %d", rc.CommittedEpoch(), e+1)
	}
	return ""
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
