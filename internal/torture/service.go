package torture

import (
	"fmt"

	"libcrpm/internal/nvm"
	"libcrpm/internal/replica"
	"libcrpm/internal/sched"
	"libcrpm/internal/server"
)

// ServiceConfig parameterizes the sharded-service crash sweep: a
// reference run of the full service measures each shard's serving-phase
// primitive span, then the identical run is replayed once per (crashed
// shard, policy, crash point), recovered with the coordinated protocol,
// and verified — every op acked before the landing epoch's cut must be
// present on every shard, and all shards must land on one global epoch.
type ServiceConfig struct {
	// Server is the service under torture. Crash must be nil (the sweep
	// owns injection); Liveness is forced on for replays.
	Server server.Config
	// CrashShards lists the shards to inject into (nil = every shard).
	CrashShards []int
	// Stride tests every Stride-th crash point of a span (default: sized
	// so each (shard, policy) combo replays about 64 points).
	Stride int
	// Policies select the crash-image schedules (nil = the standard
	// three, seeded from Server.Seed).
	Policies []Policy
	// Parallel bounds concurrent replays (0 = GOMAXPROCS). Each replay
	// owns its own service world, so the violation report is
	// byte-identical at any setting.
	Parallel int
	// KillPrimary sweeps crash-failover instead of restart-recovery:
	// Server.Replicas must be positive, and every replay additionally
	// demands that the crashed shard failed over to a promoted secondary.
	KillPrimary bool
	// SLAs adds an SLA dimension to the kill-primary matrix: each spec
	// (replica.ParseSet syntax) re-runs the whole (shard, policy, point)
	// grid with the clients assigned that SLA set, under its own
	// reference run — routing changes which clock serves each read, so
	// crash points shift per spec. Points keys gain a trailing "/<spec>"
	// segment; empty leaves the single-run key format unchanged.
	SLAs []string
	// Progress, if non-nil, is called after each (shard, policy) combo.
	Progress func(shard int, policy string, points, violations int)
}

// ServiceViolation is one consistency failure of the service sweep.
type ServiceViolation struct {
	// CrashShard and Policy identify the injection; Index is the device
	// primitive the crash fired on (replayable via server.CrashSpec).
	// SLA is the sweep's SLA spec, empty outside kill-primary SLA sweeps.
	CrashShard int
	Policy     string
	SLA        string
	Index      int64
	// Shard, Stage, Detail locate the failure (Shard -1 for run-level
	// failures).
	Shard  int
	Stage  string
	Detail string
}

func (v ServiceViolation) String() string {
	combo := fmt.Sprintf("shard %d/%s", v.CrashShard, v.Policy)
	if v.SLA != "" {
		combo += "/" + v.SLA
	}
	return fmt.Sprintf("[%s] crash at primitive %d: shard %d: %s: %s",
		combo, v.Index, v.Shard, v.Stage, v.Detail)
}

// ServiceResult summarizes a service sweep.
type ServiceResult struct {
	// Points counts crash points tested per "shard<i>/<policy>" combo.
	Points map[string]int
	// Replays counts every crash-replay-recover service run.
	Replays int
	// Violations is empty iff the sweep passed.
	Violations []ServiceViolation
}

// OK reports whether the sweep found no violations.
func (r ServiceResult) OK() bool { return len(r.Violations) == 0 }

// ServiceSweep runs the matrix. The reference run must itself be
// violation-free; its per-shard serving spans define the crash points.
func ServiceSweep(cfg ServiceConfig) (ServiceResult, error) {
	res := ServiceResult{Points: make(map[string]int)}
	if cfg.Server.Crash != nil {
		return res, fmt.Errorf("torture: ServiceConfig.Server.Crash must be nil")
	}
	if cfg.KillPrimary && cfg.Server.Replicas < 1 {
		return res, fmt.Errorf("torture: kill-primary sweep needs Server.Replicas > 0")
	}
	if len(cfg.SLAs) > 0 && !cfg.KillPrimary {
		return res, fmt.Errorf("torture: the SLA dimension requires KillPrimary")
	}
	specs := []string{""}
	if len(cfg.SLAs) > 0 {
		specs = cfg.SLAs
	}
	for _, spec := range specs {
		if err := serviceSweepSpec(cfg, spec, &res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// serviceSweepSpec runs one SLA spec's (shard, policy, point) grid off its
// own reference run, folding points and violations into res.
func serviceSweepSpec(cfg ServiceConfig, spec string, res *ServiceResult) error {
	base := cfg.Server
	base.Liveness = true
	if spec != "" {
		set, err := replica.ParseSet(spec)
		if err != nil {
			return fmt.Errorf("torture: sweep SLA %q: %w", spec, err)
		}
		base.SLAs = set
	}
	ref, err := server.New(base)
	if err != nil {
		return fmt.Errorf("torture: service reference: %w", err)
	}
	refRes, err := ref.Run()
	if err != nil {
		return fmt.Errorf("torture: service reference run: %w", err)
	}
	if !refRes.OK() {
		return fmt.Errorf("torture: service reference run inconsistent: %v", refRes.Violations[0])
	}
	spans := ref.PrimitiveSpans()

	shards := cfg.CrashShards
	if shards == nil {
		for i := 0; i < base.Shards; i++ {
			shards = append(shards, i)
		}
	}
	policies := cfg.Policies
	if policies == nil {
		policies = StandardPolicies(base.Seed)
	}

	for _, sh := range shards {
		if sh < 0 || sh >= base.Shards {
			return fmt.Errorf("torture: crash shard %d out of range", sh)
		}
		lo, hi := spans[sh][0], spans[sh][1]
		stride := cfg.Stride
		if stride <= 0 {
			stride = int((hi - lo) / 64)
			if stride < 1 {
				stride = 1
			}
		}
		var ks []int64
		for k := lo + 1; k < hi; k += int64(stride) {
			ks = append(ks, k)
		}
		for _, pol := range policies {
			vs := sched.Map(len(ks), sched.Options{Workers: cfg.Parallel}, func(i int) []ServiceViolation {
				return serviceReplay(base, sh, pol, spec, ks[i], cfg.KillPrimary)
			})
			res.Replays += len(ks)
			key := fmt.Sprintf("shard%d/%s", sh, pol.Name)
			if spec != "" {
				key += "/" + spec
			}
			res.Points[key] = len(ks)
			bad := 0
			for _, cell := range vs {
				bad += len(cell)
				res.Violations = append(res.Violations, cell...)
			}
			if cfg.Progress != nil {
				cfg.Progress(sh, pol.Name, len(ks), bad)
			}
		}
	}
	return nil
}

// serviceReplay runs one crash-replay-recover cycle with panic
// containment: a protocol panic becomes a violation row for this crash
// point instead of killing the sweep.
func serviceReplay(base server.Config, crashShard int, pol Policy, sla string, at int64, killPrimary bool) (out []ServiceViolation) {
	defer func() {
		if r := recover(); r != nil {
			out = append(out, ServiceViolation{
				CrashShard: crashShard, Policy: pol.Name, SLA: sla, Index: at,
				Shard: -1, Stage: "panic", Detail: fmt.Sprint(r),
			})
		}
	}()
	cfg := base
	cfg.Crash = &server.CrashSpec{
		Shard: crashShard,
		At:    at,
		// Every shard's crash image comes from the policy, phase-shifted
		// per shard so neighbouring shards get different line fates.
		Policy: func(shard int) nvm.CrashPolicy {
			return pol.New(at ^ int64(shard+1)*0x9e3779b97f4a7c)
		},
	}
	svc, err := server.New(cfg)
	if err != nil {
		return []ServiceViolation{{CrashShard: crashShard, Policy: pol.Name, SLA: sla, Index: at, Shard: -1, Stage: "config", Detail: err.Error()}}
	}
	res, err := svc.Run()
	if err != nil {
		return []ServiceViolation{{CrashShard: crashShard, Policy: pol.Name, SLA: sla, Index: at, Shard: -1, Stage: "run", Detail: err.Error()}}
	}
	if !res.Recovered && res.OK() {
		out = append(out, ServiceViolation{
			CrashShard: crashShard, Policy: pol.Name, SLA: sla, Index: at,
			Shard: -1, Stage: "recover", Detail: "run reported no recovery and no violations",
		})
	}
	if killPrimary && !res.FailedOver && res.OK() {
		out = append(out, ServiceViolation{
			CrashShard: crashShard, Policy: pol.Name, SLA: sla, Index: at,
			Shard: crashShard, Stage: "failover", Detail: "kill-primary replay recovered without promoting a secondary",
		})
	}
	for _, v := range res.Violations {
		out = append(out, ServiceViolation{
			CrashShard: crashShard, Policy: pol.Name, SLA: sla, Index: at,
			Shard: v.Shard, Stage: v.Stage, Detail: v.Detail,
		})
	}
	return out
}
