package torture

import (
	"fmt"

	"libcrpm/internal/sched"
	"libcrpm/internal/server"
)

// MigrateConfig parameterizes the live-migration crash sweep: a reference
// run of a migratory service (Config.Migrations / AutoSplit) records each
// migration phase's device-primitive window on both participating shards
// — mid-transfer, mid-catch-up, and around the ownership flip — then the
// identical run is crashed at every strided point inside those windows,
// recovered with the coordinated protocol, and verified. Zero tolerance:
// a crash anywhere in a migration must lose no committed op, double-apply
// nothing across the handoff, and land every member on one global epoch
// with a ring to match.
type MigrateConfig struct {
	// Server is the migratory service under torture. Migrations or
	// AutoSplit must be set; Crash must be nil (the sweep owns injection).
	// Liveness is forced on for replays.
	Server server.Config
	// Phases filters the swept migration phases (nil = transfer, catchup,
	// flip).
	Phases []string
	// Stride tests every Stride-th crash point of a phase window
	// (default: sized so each (span, policy) combo replays about 32
	// points).
	Stride int
	// Policies select the crash-image schedules (nil = the standard
	// three, seeded from Server.Seed).
	Policies []Policy
	// Parallel bounds concurrent replays (0 = GOMAXPROCS). Each replay
	// owns its own service world, so the violation report is
	// byte-identical at any setting.
	Parallel int
	// Progress, if non-nil, is called after each (span, policy) combo.
	Progress func(shard int, phase, policy string, points, violations int)
}

// MigrateSweep runs the migration crash matrix, reporting per-combo point
// counts under "shard<i>/<phase>/<policy>" keys.
func MigrateSweep(cfg MigrateConfig) (ServiceResult, error) {
	res := ServiceResult{Points: make(map[string]int)}
	if cfg.Server.Crash != nil {
		return res, fmt.Errorf("torture: MigrateConfig.Server.Crash must be nil")
	}
	if len(cfg.Server.Migrations) == 0 && cfg.Server.AutoSplit.MaxShards == 0 {
		return res, fmt.Errorf("torture: MigrateSweep needs a migratory config (Migrations or AutoSplit)")
	}
	base := cfg.Server
	base.Liveness = true
	ref, err := server.New(base)
	if err != nil {
		return res, fmt.Errorf("torture: migration reference: %w", err)
	}
	refRes, err := ref.Run()
	if err != nil {
		return res, fmt.Errorf("torture: migration reference run: %w", err)
	}
	if !refRes.OK() {
		return res, fmt.Errorf("torture: migration reference run inconsistent: %v", refRes.Violations[0])
	}
	spans := ref.MigrationSpans()
	if len(spans) == 0 {
		return res, fmt.Errorf("torture: reference run recorded no migration spans")
	}
	phases := map[string]bool{"transfer": true, "catchup": true, "flip": true}
	if cfg.Phases != nil {
		phases = map[string]bool{}
		for _, p := range cfg.Phases {
			phases[p] = true
		}
	}
	policies := cfg.Policies
	if policies == nil {
		policies = StandardPolicies(base.Seed)
	}

	for _, ms := range spans {
		if !phases[ms.Phase] {
			continue
		}
		lo, hi := ms.Lo, ms.Hi
		if hi <= lo+1 {
			continue // a phase with no primitives on this shard has no crash points
		}
		stride := cfg.Stride
		if stride <= 0 {
			stride = int((hi - lo) / 32)
			if stride < 1 {
				stride = 1
			}
		}
		var ks []int64
		for k := lo + 1; k < hi; k += int64(stride) {
			ks = append(ks, k)
		}
		for _, pol := range policies {
			vs := sched.Map(len(ks), sched.Options{Workers: cfg.Parallel}, func(i int) []ServiceViolation {
				return serviceReplay(base, ms.Shard, pol, "", ks[i], false)
			})
			res.Replays += len(ks)
			key := fmt.Sprintf("shard%d/%s/%s", ms.Shard, ms.Phase, pol.Name)
			res.Points[key] += len(ks)
			bad := 0
			for _, cell := range vs {
				bad += len(cell)
				res.Violations = append(res.Violations, cell...)
			}
			if cfg.Progress != nil {
				cfg.Progress(ms.Shard, ms.Phase, pol.Name, len(ks), bad)
			}
		}
	}
	return res, nil
}
