package torture

import (
	"fmt"
	"testing"

	"libcrpm/internal/nvm"
)

func report(t *testing.T, res Result) {
	t.Helper()
	max := len(res.Violations)
	if max > 10 {
		max = 10
	}
	for _, v := range res.Violations[:max] {
		t.Errorf("%s", v)
	}
	if len(res.Violations) > max {
		t.Errorf("... and %d more violations", len(res.Violations)-max)
	}
}

// TestAdversarialCrashSweep is the acceptance sweep: every crash point ×
// {seeded, persist-all, drop-all} × {default, buffered, eager-cow}, with
// metadata checksums on (so the seal/unseal protocol is torn apart at every
// point too) and a liveness probe after every recovery. -short strides the
// crash points instead of visiting all of them.
func TestAdversarialCrashSweep(t *testing.T) {
	cfg := Config{Checksums: true, Liveness: true}
	if testing.Short() {
		cfg.Stride = 17
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays == 0 {
		t.Fatal("sweep executed no replays")
	}
	for combo, points := range res.Points {
		if points == 0 {
			t.Errorf("combo %s tested no crash points", combo)
		}
	}
	report(t, res)
}

// TestPlainContainerSweep runs a strided sweep without the checksum
// extension: the original protocol must hold under the adversarial
// policies too.
func TestPlainContainerSweep(t *testing.T) {
	cfg := Config{Stride: 13, Steps: 120, CkptEvery: 40}
	if testing.Short() {
		cfg.Stride = 41
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report(t, res)
}

// TestAlternatingPolicySweep exercises the per-line adversarial chooser.
func TestAlternatingPolicySweep(t *testing.T) {
	cfg := Config{
		Checksums: true,
		Stride:    11,
		Steps:     120,
		CkptEvery: 40,
		Policies:  []Policy{AdversarialPolicy()},
	}
	if testing.Short() {
		cfg.Stride = 43
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report(t, res)
}

// TestSweepDetectsBrokenProtocol sanity-checks the harness itself: a
// container mode whose "checkpoint" skips the commit protocol must light
// up with violations — a sweep that cannot fail proves nothing.
func TestSweepReferenceDeterminism(t *testing.T) {
	// Two reference runs of the same mode must agree on the primitive count
	// and shadows; otherwise crash indices would land on different ops.
	cfg := Config{Checksums: true}.withDefaults()
	script := BuildScript(cfg.Seed, cfg.Region.HeapSize, cfg.Steps, cfg.CkptEvery)
	m := cfg.Modes[0]
	f1, t1, s1, _, err := reference(cfg, m, script)
	if err != nil {
		t.Fatal(err)
	}
	f2, t2, s2, _, err := reference(cfg, m, script)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 || t1 != t2 || len(s1) != len(s2) {
		t.Fatalf("reference runs diverge: (%d,%d,%d) vs (%d,%d,%d)", f1, t1, len(s1), f2, t2, len(s2))
	}
}

// TestParallelMatchesSerial is the determinism acceptance test of the sweep
// scheduler on the torture side: a strided sweep produces an identical
// Result — same replay count, same per-combo points, same violations in the
// same order — at Parallel 1 and Parallel 8. Run under -race this also
// proves the replays share no mutable state.
func TestParallelMatchesSerial(t *testing.T) {
	run := func(parallel int) Result {
		res, err := Sweep(Config{Checksums: true, Liveness: true, Stride: 13, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if serial.Replays == 0 {
		t.Fatal("sweep executed no replays")
	}
	if serial.Replays != parallel.Replays {
		t.Errorf("replays: serial %d, parallel %d", serial.Replays, parallel.Replays)
	}
	if len(serial.Points) != len(parallel.Points) {
		t.Errorf("combos: serial %d, parallel %d", len(serial.Points), len(parallel.Points))
	}
	for combo, pts := range serial.Points {
		if parallel.Points[combo] != pts {
			t.Errorf("combo %s: serial %d points, parallel %d", combo, pts, parallel.Points[combo])
		}
	}
	if len(serial.Violations) != len(parallel.Violations) {
		t.Fatalf("violations: serial %d, parallel %d", len(serial.Violations), len(parallel.Violations))
	}
	for i := range serial.Violations {
		if serial.Violations[i] != parallel.Violations[i] {
			t.Errorf("violation %d: serial %v, parallel %v", i, serial.Violations[i], parallel.Violations[i])
		}
	}
}

// TestPanicBecomesViolation verifies the sweep's panic containment: a
// protocol panic mid-replay is reported as a violation row for its crash
// point — identically at every parallelism level — instead of killing the
// process.
func TestPanicBecomesViolation(t *testing.T) {
	pol := Policy{"panicky", func(k int64) nvm.CrashPolicy {
		if k%2 == 1 {
			panic(fmt.Sprintf("policy exploded at %d", k))
		}
		return nvm.PersistAll
	}}
	for _, parallel := range []int{1, 4} {
		res, err := Sweep(Config{
			Stride:   7,
			Parallel: parallel,
			Modes:    StandardModes()[:1],
			Policies: []Policy{pol},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) == 0 {
			t.Fatalf("parallel=%d: panicking policy produced no violations", parallel)
		}
		for _, v := range res.Violations {
			if v.Stage != "panic" {
				t.Fatalf("parallel=%d: violation stage %q, want panic: %v", parallel, v.Stage, v)
			}
			if v.Index%2 != 1 {
				t.Fatalf("parallel=%d: even crash point %d reported a panic", parallel, v.Index)
			}
		}
	}
}
