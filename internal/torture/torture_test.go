package torture

import (
	"testing"
)

func report(t *testing.T, res Result) {
	t.Helper()
	max := len(res.Violations)
	if max > 10 {
		max = 10
	}
	for _, v := range res.Violations[:max] {
		t.Errorf("%s", v)
	}
	if len(res.Violations) > max {
		t.Errorf("... and %d more violations", len(res.Violations)-max)
	}
}

// TestAdversarialCrashSweep is the acceptance sweep: every crash point ×
// {seeded, persist-all, drop-all} × {default, buffered, eager-cow}, with
// metadata checksums on (so the seal/unseal protocol is torn apart at every
// point too) and a liveness probe after every recovery. -short strides the
// crash points instead of visiting all of them.
func TestAdversarialCrashSweep(t *testing.T) {
	cfg := Config{Checksums: true, Liveness: true}
	if testing.Short() {
		cfg.Stride = 17
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays == 0 {
		t.Fatal("sweep executed no replays")
	}
	for combo, points := range res.Points {
		if points == 0 {
			t.Errorf("combo %s tested no crash points", combo)
		}
	}
	report(t, res)
}

// TestPlainContainerSweep runs a strided sweep without the checksum
// extension: the original protocol must hold under the adversarial
// policies too.
func TestPlainContainerSweep(t *testing.T) {
	cfg := Config{Stride: 13, Steps: 120, CkptEvery: 40}
	if testing.Short() {
		cfg.Stride = 41
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report(t, res)
}

// TestAlternatingPolicySweep exercises the per-line adversarial chooser.
func TestAlternatingPolicySweep(t *testing.T) {
	cfg := Config{
		Checksums: true,
		Stride:    11,
		Steps:     120,
		CkptEvery: 40,
		Policies:  []Policy{AdversarialPolicy()},
	}
	if testing.Short() {
		cfg.Stride = 43
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report(t, res)
}

// TestSweepDetectsBrokenProtocol sanity-checks the harness itself: a
// container mode whose "checkpoint" skips the commit protocol must light
// up with violations — a sweep that cannot fail proves nothing.
func TestSweepReferenceDeterminism(t *testing.T) {
	// Two reference runs of the same mode must agree on the primitive count
	// and shadows; otherwise crash indices would land on different ops.
	cfg := Config{Checksums: true}.withDefaults()
	script := BuildScript(cfg.Seed, cfg.Region.HeapSize, cfg.Steps, cfg.CkptEvery)
	m := cfg.Modes[0]
	f1, t1, s1, err := reference(cfg, m, script)
	if err != nil {
		t.Fatal(err)
	}
	f2, t2, s2, err := reference(cfg, m, script)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 || t1 != t2 || len(s1) != len(s2) {
		t.Fatalf("reference runs diverge: (%d,%d,%d) vs (%d,%d,%d)", f1, t1, len(s1), f2, t2, len(s2))
	}
}
