package alloc

import (
	"testing"

	"libcrpm/internal/baselines/nvmnp"
	"libcrpm/internal/heap"
)

// FuzzAllocFree drives arbitrary allocate/free sequences and checks the
// allocator never hands out overlapping or out-of-bounds memory.
func FuzzAllocFree(f *testing.F) {
	f.Add([]byte{10, 200, 3, 0, 0, 255})
	f.Add([]byte{1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 600 {
			return
		}
		h := heap.New(nvmnp.New(1 << 18))
		a, err := Format(h)
		if err != nil {
			t.Fatal(err)
		}
		type blk struct{ off, usable int }
		var live []blk
		for _, op := range ops {
			if op%4 == 0 && len(live) > 0 {
				i := int(op/4) % len(live)
				a.Free(live[i].off)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := 1 + int(op)*7%900
			off, err := a.Alloc(size)
			if err != nil {
				continue // OOM is legal
			}
			usable := a.UsableSize(off)
			if usable < size {
				t.Fatalf("Alloc(%d) gave only %d usable bytes", size, usable)
			}
			if off <= 0 || off+usable > h.Size() {
				t.Fatalf("allocation [%d,%d) out of heap", off, off+usable)
			}
			for _, b := range live {
				if off < b.off+b.usable && b.off < off+usable {
					t.Fatalf("overlap: [%d,%d) vs [%d,%d)", off, off+usable, b.off, b.off+b.usable)
				}
			}
			live = append(live, blk{off, usable})
		}
	})
}
