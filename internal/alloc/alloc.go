// Package alloc implements the persistent memory allocator libcrpm provides
// for managing program-state objects (§3.2, §4). All allocator metadata —
// size-class free lists, the bump pointer, and the root pointer array used
// to retrieve objects after a restart — lives inside the container heap and
// is mutated through the instrumented accessors, so it is checkpointed and
// recovered together with the data it describes. A crash rolls allocator
// state back to the last checkpoint atomically with application state: no
// leaks, no dangling objects.
//
// Addresses are heap offsets, never Go pointers; offset 0 is the null
// reference (the header occupies it, so no allocation ever returns 0).
package alloc

import (
	"errors"
	"fmt"

	"libcrpm/internal/heap"
)

// NumRoots is the size of the root pointer array (§3.2).
const NumRoots = 16

// Magic identifies a formatted allocator arena.
const Magic uint64 = 0x4352504d414c4c43 // "CRPMALLC"

const (
	offMagic    = 0
	offHeapSize = 8
	offBump     = 16
	offRoots    = 24
	offClasses  = offRoots + 8*NumRoots
	// classes: free list heads, 8 bytes each
)

// minClass is the smallest allocation size class.
const minClass = 16

// numClasses covers 16 B .. 8 MB in powers of two.
const numClasses = 20

const headerSize = offClasses + 8*numClasses

// blockHeaderSize precedes every allocation and records its size class.
const blockHeaderSize = 8

// Allocator manages objects inside one container heap.
type Allocator struct {
	h *heap.Heap
}

// classFor returns the size-class index and its byte size for a request.
func classFor(n int) (int, int, error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("alloc: invalid size %d", n)
	}
	size := minClass
	for c := 0; c < numClasses; c++ {
		if n <= size {
			return c, size, nil
		}
		size *= 2
	}
	return 0, 0, fmt.Errorf("alloc: size %d exceeds the largest class (%d)", n, minClass<<(numClasses-1))
}

// Format initializes a fresh arena over the whole heap and returns the
// allocator. It must be followed by a checkpoint to become durable.
func Format(h *heap.Heap) (*Allocator, error) {
	if h.Size() < headerSize+minClass {
		return nil, errors.New("alloc: heap too small for allocator header")
	}
	a := &Allocator{h: h}
	h.WriteU64(offMagic, Magic)
	h.WriteU64(offHeapSize, uint64(h.Size()))
	h.WriteU64(offBump, uint64(headerSize))
	for i := 0; i < NumRoots; i++ {
		h.WriteU64(offRoots+8*i, 0)
	}
	for c := 0; c < numClasses; c++ {
		h.WriteU64(offClasses+8*c, 0)
	}
	return a, nil
}

// Open attaches to a previously formatted arena (after recovery).
func Open(h *heap.Heap) (*Allocator, error) {
	if h.Size() < headerSize {
		return nil, errors.New("alloc: heap too small")
	}
	if got := h.ReadU64(offMagic); got != Magic {
		return nil, fmt.Errorf("alloc: bad magic %#x", got)
	}
	if got := h.ReadU64(offHeapSize); got != uint64(h.Size()) {
		return nil, fmt.Errorf("alloc: arena formatted for %d bytes, heap is %d", got, h.Size())
	}
	return &Allocator{h: h}, nil
}

// Heap returns the underlying instrumented heap.
func (a *Allocator) Heap() *heap.Heap { return a.h }

// Alloc reserves n bytes and returns the offset of the usable region. The
// memory is not zeroed if it was previously freed; use AllocZero when the
// caller depends on zero contents.
func (a *Allocator) Alloc(n int) (int, error) {
	c, size, err := classFor(n)
	if err != nil {
		return 0, err
	}
	headOff := offClasses + 8*c
	if head := a.h.ReadU64(headOff); head != 0 {
		next := a.h.ReadU64(int(head))
		a.h.WriteU64(headOff, next)
		return int(head), nil
	}
	bump := int(a.h.ReadU64(offBump))
	need := blockHeaderSize + size
	if bump+need > a.h.Size() {
		return 0, fmt.Errorf("alloc: out of memory (need %d bytes, %d free)", need, a.h.Size()-bump)
	}
	a.h.WriteU64(offBump, uint64(bump+need))
	a.h.WriteU64(bump, uint64(c)) // block header: size class
	return bump + blockHeaderSize, nil
}

// AllocZero is Alloc followed by clearing the returned region.
func (a *Allocator) AllocZero(n int) (int, error) {
	off, err := a.Alloc(n)
	if err != nil {
		return 0, err
	}
	a.h.Zero(off, n)
	return off, nil
}

// Free returns an allocation to its size-class free list. Freeing offset 0
// is a no-op, mirroring free(NULL).
func (a *Allocator) Free(off int) {
	if off == 0 {
		return
	}
	hdr := off - blockHeaderSize
	c := int(a.h.ReadU64(hdr))
	if c < 0 || c >= numClasses {
		panic(fmt.Sprintf("alloc: Free(%d): corrupt block header (class %d)", off, c))
	}
	headOff := offClasses + 8*c
	a.h.WriteU64(off, a.h.ReadU64(headOff))
	a.h.WriteU64(headOff, uint64(off))
}

// UsableSize returns the capacity of an allocation (its class size).
func (a *Allocator) UsableSize(off int) int {
	c := int(a.h.ReadU64(off - blockHeaderSize))
	return minClass << c
}

// SetRoot stores a root pointer (§3.2): the offsets applications use to find
// their objects again after a restart.
func (a *Allocator) SetRoot(i int, off uint64) {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("alloc: root index %d out of range", i))
	}
	a.h.WriteU64(offRoots+8*i, off)
}

// Root loads a root pointer.
func (a *Allocator) Root(i int) uint64 {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("alloc: root index %d out of range", i))
	}
	return a.h.ReadU64(offRoots + 8*i)
}

// Used returns the bump high-water mark: bytes of the heap ever allocated
// (including block headers and the allocator header).
func (a *Allocator) Used() int { return int(a.h.ReadU64(offBump)) }
