package alloc

import (
	"testing"
	"testing/quick"

	"libcrpm/internal/baselines/nvmnp"
	"libcrpm/internal/core"
	"libcrpm/internal/heap"
	"libcrpm/internal/nvm"
	"libcrpm/internal/region"
)

func newHeap(t *testing.T, size int) *heap.Heap {
	t.Helper()
	return heap.New(nvmnp.New(size))
}

func TestFormatOpen(t *testing.T) {
	h := newHeap(t, 1<<16)
	if _, err := Format(h); err != nil {
		t.Fatal(err)
	}
	a, err := Open(h)
	if err != nil {
		t.Fatal(err)
	}
	if a.Used() != headerSize {
		t.Fatalf("fresh Used = %d, want %d", a.Used(), headerSize)
	}
}

func TestOpenUnformatted(t *testing.T) {
	h := newHeap(t, 1<<16)
	if _, err := Open(h); err == nil {
		t.Fatal("Open of unformatted heap succeeded")
	}
}

func TestFormatTooSmall(t *testing.T) {
	h := newHeap(t, 64)
	if _, err := Format(h); err == nil {
		t.Fatal("Format of tiny heap succeeded")
	}
}

func TestAllocDistinct(t *testing.T) {
	h := newHeap(t, 1<<16)
	a, _ := Format(h)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		off, err := a.Alloc(24)
		if err != nil {
			t.Fatal(err)
		}
		if off == 0 {
			t.Fatal("Alloc returned the null offset")
		}
		if seen[off] {
			t.Fatalf("Alloc returned %d twice", off)
		}
		seen[off] = true
		if off+24 > h.Size() {
			t.Fatalf("allocation [%d,%d) beyond heap", off, off+24)
		}
	}
}

func TestFreeReuse(t *testing.T) {
	h := newHeap(t, 1<<16)
	a, _ := Format(h)
	off1, _ := a.Alloc(100)
	a.Free(off1)
	off2, _ := a.Alloc(100)
	if off1 != off2 {
		t.Fatalf("free block not reused: %d then %d", off1, off2)
	}
	// Different class does not reuse it.
	a.Free(off2)
	off3, _ := a.Alloc(1000)
	if off3 == off1 {
		t.Fatal("allocation of a different class reused a smaller block")
	}
}

func TestFreeNullIsNoop(t *testing.T) {
	h := newHeap(t, 1<<16)
	a, _ := Format(h)
	a.Free(0)
	if _, err := a.Alloc(8); err != nil {
		t.Fatal(err)
	}
}

func TestUsableSize(t *testing.T) {
	h := newHeap(t, 1<<16)
	a, _ := Format(h)
	cases := map[int]int{1: 16, 16: 16, 17: 32, 100: 128, 256: 256, 257: 512}
	for req, want := range cases {
		off, err := a.Alloc(req)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.UsableSize(off); got != want {
			t.Errorf("UsableSize(alloc(%d)) = %d, want %d", req, got, want)
		}
	}
}

func TestAllocZero(t *testing.T) {
	h := newHeap(t, 1<<16)
	a, _ := Format(h)
	off, _ := a.Alloc(64)
	h.WriteU64(off, 0xffffffffffffffff)
	a.Free(off)
	off2, err := a.AllocZero(64)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off {
		t.Fatalf("expected reuse, got %d vs %d", off2, off)
	}
	for i := 0; i < 64; i += 8 {
		if h.ReadU64(off2+i) != 0 {
			t.Fatalf("AllocZero left dirty byte at +%d", i)
		}
	}
}

func TestOutOfMemory(t *testing.T) {
	h := newHeap(t, 4096)
	a, err := Format(h)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, err := a.Alloc(512); err != nil {
			break
		}
		count++
		if count > 1000 {
			t.Fatal("never ran out of memory")
		}
	}
	if count == 0 {
		t.Fatal("no allocation succeeded before OOM")
	}
	// OOM of one class leaves other classes (with freed blocks) working.
	if _, err := a.Alloc(16); err == nil {
		// Fine if small classes still fit; just ensure no corruption.
		_ = err
	}
}

func TestInvalidSizes(t *testing.T) {
	h := newHeap(t, 1<<16)
	a, _ := Format(h)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Fatal("Alloc(-5) succeeded")
	}
	if _, err := a.Alloc(1 << 30); err == nil {
		t.Fatal("Alloc(1GB) beyond largest class succeeded")
	}
}

func TestRoots(t *testing.T) {
	h := newHeap(t, 1<<16)
	a, _ := Format(h)
	for i := 0; i < NumRoots; i++ {
		if a.Root(i) != 0 {
			t.Fatalf("fresh root %d non-zero", i)
		}
	}
	a.SetRoot(3, 12345)
	if a.Root(3) != 12345 {
		t.Fatal("root round-trip failed")
	}
	for _, fn := range []func(){
		func() { a.SetRoot(-1, 0) },
		func() { a.SetRoot(NumRoots, 0) },
		func() { a.Root(NumRoots) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("root index out of range did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestAllocatorSurvivesCrash exercises the paper's claim that allocator
// metadata is checkpointed with the data: allocations after the last
// checkpoint are rolled back, so the recovered allocator can re-allocate the
// same space without corruption.
func TestAllocatorSurvivesCrash(t *testing.T) {
	opts := core.Options{
		Region: region.Config{HeapSize: 64 * 1024, SegmentSize: 8192, BlockSize: 256, BackupRatio: 1},
	}
	l, err := region.NewLayout(opts.Region)
	if err != nil {
		t.Fatal(err)
	}
	dev := nvm.NewDevice(l.DeviceSize())
	c, err := core.NewContainer(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New(c)
	a, err := Format(h)
	if err != nil {
		t.Fatal(err)
	}
	off, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	h.WriteU64(off, 777)
	a.SetRoot(0, uint64(off))
	usedAtCkpt := a.Used()
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint allocations must vanish at the crash.
	off2, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	h.WriteU64(off2, 888)
	a.SetRoot(1, uint64(off2))
	dev.CrashDropAll()
	c2, err := core.OpenContainer(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	h2 := heap.New(c2)
	a2, err := Open(h2)
	if err != nil {
		t.Fatalf("allocator did not survive crash: %v", err)
	}
	if a2.Used() != usedAtCkpt {
		t.Fatalf("bump pointer = %d, want rolled back to %d", a2.Used(), usedAtCkpt)
	}
	if got := a2.Root(0); got != uint64(off) {
		t.Fatalf("root 0 = %d, want %d", got, off)
	}
	if got := h2.ReadU64(int(a2.Root(0))); got != 777 {
		t.Fatalf("object value = %d, want 777", got)
	}
	if a2.Root(1) != 0 {
		t.Fatal("uncommitted root survived the crash")
	}
	// The recovered allocator hands out the rolled-back space again.
	off3, err := a2.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if off3 != off2 {
		t.Fatalf("recovered allocator bumped to %d, want %d", off3, off2)
	}
}

// TestQuickAllocFreeNoOverlap property-checks that live allocations never
// overlap under random alloc/free interleavings.
func TestQuickAllocFreeNoOverlap(t *testing.T) {
	f := func(ops []uint16) bool {
		h := newHeap(t, 1<<18)
		a, err := Format(h)
		if err != nil {
			return false
		}
		type blk struct{ off, size int }
		var live []blk
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op/3) % len(live)
				a.Free(live[i].off)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := 8 + int(op)%500
			off, err := a.Alloc(size)
			if err != nil {
				continue
			}
			usable := a.UsableSize(off)
			for _, b := range live {
				bu := a.UsableSize(b.off)
				if off < b.off+bu && b.off < off+usable {
					return false // overlap
				}
			}
			live = append(live, blk{off, size})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
