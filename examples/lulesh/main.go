// lulesh: fault-tolerant parallel shock hydrodynamics, the paper's Figure 3
// scenario — a multi-rank LULESH run checkpointing every five iterations
// through libcrpm's coordinated MPI protocol, killed mid-run and restarted.
// The demo verifies the resumed run finishes bit-identically to an
// uninterrupted one and reports the checkpoint overhead versus a run with
// checkpointing disabled.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"libcrpm/internal/apps/lulesh"
	"libcrpm/internal/core"
	"libcrpm/internal/mpi"
	"libcrpm/internal/nvm"
	"libcrpm/internal/region"
)

const (
	ranks     = 4
	edge      = 10
	nzPerRank = 3
	target    = 30
	ckptEvery = 5
	crashAt   = 17
	heapSize  = 8 << 20
)

func cfg(rank int) lulesh.Config {
	return lulesh.Config{
		Edge: edge, NZLocal: nzPerRank, NZGlobal: nzPerRank * ranks,
		ZOffset: rank * nzPerRank, Blast: true,
	}
}

func containerOpts() core.Options {
	return mpi.ContainerOptions(region.Config{
		HeapSize: heapSize, SegmentSize: 256 << 10, BlockSize: 256, BackupRatio: 1,
	}, core.ModeBuffered)
}

// run executes the app to `iters` iterations on fresh devices, with or
// without checkpointing, and returns final states + devices + sim time.
func run(iters int, checkpointing bool) ([][]byte, []*nvm.Device, time.Duration) {
	opts := containerOpts()
	l, err := region.NewLayout(opts.Region)
	if err != nil {
		log.Fatal(err)
	}
	devs := make([]*nvm.Device, ranks)
	states := make([][]byte, ranks)
	var maxTime time.Duration
	w := mpi.NewWorld(ranks)
	w.Run(func(c *mpi.Comm) {
		devs[c.Rank()] = nvm.NewDevice(l.DeviceSize())
		ctr, err := core.NewContainer(devs[c.Rank()], opts)
		if err != nil {
			log.Fatal(err)
		}
		c.AttachClock(devs[c.Rank()].Clock())
		sim, err := lulesh.New(cfg(c.Rank()), c, ctr)
		if err != nil {
			log.Fatal(err)
		}
		every := 0
		ckpt := func() error { return mpi.Checkpoint(c, ctr) }
		if checkpointing {
			every = ckptEvery
			if err := ckpt(); err != nil {
				log.Fatal(err)
			}
		}
		if err := sim.Run(iters, every, ckpt); err != nil {
			log.Fatal(err)
		}
		c.Barrier()
		if c.Rank() == 0 {
			maxTime = devs[0].Clock().Now()
		}
		buf := make([]byte, len(ctr.Bytes()))
		copy(buf, ctr.Bytes())
		states[c.Rank()] = buf
	})
	return states, devs, maxTime
}

func main() {
	fmt.Printf("LULESH %d^2 x %d, %d ranks, checkpoint every %d iterations\n",
		edge, nzPerRank*ranks, ranks, ckptEvery)

	// Reference: uninterrupted fault-tolerant run.
	want, _, tCkpt := run(target, true)
	_, _, tPlain := run(target, false)
	fmt.Printf("simulated time: %v without checkpointing, %v with (%.2f%% overhead)\n",
		tPlain, tCkpt, (float64(tCkpt)/float64(tPlain)-1)*100)

	// Crashed run: advance to iteration 17, then pull the plug.
	fmt.Printf("running again and killing all ranks at iteration %d...\n", crashAt)
	_, devs, _ := run(crashAt, true)
	rng := rand.New(rand.NewSource(2024))
	for _, d := range devs {
		d.Crash(rng)
	}

	// Restart: coordinated recovery to the last globally consistent epoch,
	// then resume to the target.
	opts := containerOpts()
	recovered := make([][]byte, ranks)
	var recoveredIter int
	w := mpi.NewWorld(ranks)
	w.Run(func(c *mpi.Comm) {
		ctr, err := mpi.OpenAndRecover(c, devs[c.Rank()], opts)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := lulesh.Attach(cfg(c.Rank()), c, ctr)
		if err != nil {
			log.Fatal(err)
		}
		if c.Rank() == 0 {
			recoveredIter = sim.Iter()
		}
		if err := sim.Run(target, ckptEvery, func() error { return mpi.Checkpoint(c, ctr) }); err != nil {
			log.Fatal(err)
		}
		c.Barrier()
		buf := make([]byte, len(ctr.Bytes()))
		copy(buf, ctr.Bytes())
		recovered[c.Rank()] = buf
	})
	fmt.Printf("recovered at iteration %d (last coordinated checkpoint), resumed to %d\n",
		recoveredIter, target)

	for r := 0; r < ranks; r++ {
		if !bytes.Equal(recovered[r], want[r]) {
			log.Fatalf("rank %d: resumed state differs from the uninterrupted run", r)
		}
	}
	fmt.Println("resumed run is bit-identical to the uninterrupted run ✓")
}
