// kvstore: a recoverable key-value service with an ordered index and an
// unordered index over the same store, epoch-based durability, and a
// crash-recovery audit. Demonstrates multiple structures sharing one
// container, root management, and the paper's epoch model: mutations become
// durable in batches at checkpoint boundaries, and the protocol guarantees
// the pair of indexes is recovered consistently (both from the same epoch).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	crpm "libcrpm"
)

const (
	rootHash = 0
	rootTree = 1
	rootMeta = 2
)

func main() {
	opts := crpm.Options{HeapSize: 32 << 20}
	st, err := crpm.CreateStore(opts)
	if err != nil {
		log.Fatal(err)
	}
	hash, err := st.NewHashMap(1 << 14)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := st.NewRBMap()
	if err != nil {
		log.Fatal(err)
	}
	// A tiny metadata record: the number of committed batches.
	metaOff, err := st.Alloc(8)
	if err != nil {
		log.Fatal(err)
	}
	st.SetRoot(rootHash, uint64(hash.Root()))
	st.SetRoot(rootTree, uint64(tree.Root()))
	st.SetRoot(rootMeta, uint64(metaOff))

	rng := rand.New(rand.NewSource(42))
	shadow := map[uint64]uint64{}
	committedBatches := uint64(0)

	put := func(k, v uint64) {
		if err := hash.Put(k, v); err != nil {
			log.Fatal(err)
		}
		if err := tree.Put(k, v); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("writing 20 batches of 500 ops, checkpointing each batch...")
	start := time.Now()
	for batch := 0; batch < 20; batch++ {
		for i := 0; i < 500; i++ {
			put(uint64(rng.Intn(5000)), rng.Uint64())
		}
		committedBatches++
		st.Heap().WriteU64(metaOff, committedBatches)
		if err := st.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		if batch == 14 {
			// Snapshot what epoch 15 committed, for the audit below.
			shadow = map[uint64]uint64{}
			hash.ForEach(func(k, v uint64) bool { shadow[k] = v; return true })
		}
	}
	fmt.Printf("committed %d batches in %v wall time; simulated time %v\n",
		committedBatches, time.Since(start).Round(time.Millisecond), st.Device().Clock().Now())

	// Write a partial batch, then crash mid-epoch.
	for i := 0; i < 123; i++ {
		put(uint64(rng.Intn(5000)), 0xBAD)
	}
	fmt.Println("crash with a partial batch in flight...")
	st.Device().Crash(rng)

	st2, err := crpm.OpenStore(st.Device(), opts)
	if err != nil {
		log.Fatal(err)
	}
	hash2, err := st2.OpenHashMap(int(st2.Root(rootHash)))
	if err != nil {
		log.Fatal(err)
	}
	tree2, err := st2.OpenRBMap(int(st2.Root(rootTree)))
	if err != nil {
		log.Fatal(err)
	}
	got := st2.Heap().ReadU64(int(st2.Root(rootMeta)))
	fmt.Printf("recovered: %d batches, hash=%d keys, tree=%d keys\n", got, hash2.Len(), tree2.Len())
	if got != committedBatches {
		log.Fatalf("batch counter %d, want %d (the partial batch must vanish)", got, committedBatches)
	}

	// Audit 1: both indexes agree on every key.
	mismatch := 0
	hash2.ForEach(func(k, v uint64) bool {
		if tv, ok := tree2.Get(k); !ok || tv != v {
			mismatch++
		}
		return true
	})
	if mismatch != 0 {
		log.Fatalf("%d keys differ between the two indexes", mismatch)
	}
	fmt.Println("audit: hash and tree indexes agree on every key ✓")

	// Audit 2: the tree still satisfies the red-black invariants.
	if err := tree2.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("audit: recovered tree passes invariant checks ✓")

	// Audit 3: data committed at batch 15 is all present.
	for k, v := range shadow {
		if hv, ok := hash2.Get(k); !ok {
			log.Fatalf("key %d lost", k)
		} else if hv != v {
			// It may have been overwritten by batches 16-20; only absence
			// is an error. Overwrites are expected.
			_ = hv
		}
	}
	fmt.Println("audit: all keys from earlier committed batches survive ✓")

	// Pre-crash session metrics (counters are per-session; the recovered
	// container starts fresh).
	m := st.Container().Metrics()
	fmt.Printf("pre-crash session: %d epochs, %.1f KB checkpointed/epoch; recovered to epoch %d, metadata %d B\n",
		m.Epochs, float64(m.CheckpointBytes)/float64(m.Epochs)/1024,
		st2.Container().CommittedEpoch(), st2.Container().Metrics().MetadataBytes)
}
