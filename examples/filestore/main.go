// filestore: real cross-process persistence. The simulated NVM device's
// durable media serializes to an ordinary file; a later run (or another
// process) reloads it and recovers the store. Run the example twice to see
// state accumulate across invocations:
//
//	go run ./examples/filestore           # creates /tmp/crpm-filestore.img
//	go run ./examples/filestore           # resumes from it
//	go run ./examples/filestore -reset    # start over
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	crpm "libcrpm"
)

const rootCounter = 0
const rootLog = 1

func main() {
	path := flag.String("img", os.TempDir()+"/crpm-filestore.img", "device image path")
	reset := flag.Bool("reset", false, "discard the existing image")
	flag.Parse()

	opts := crpm.Options{HeapSize: 4 << 20, SegmentSize: 256 << 10}
	if *reset {
		os.Remove(*path)
	}

	st, fresh, err := openOrCreate(*path, opts)
	if err != nil {
		log.Fatal(err)
	}

	var v *crpm.Vector
	if fresh {
		counterOff, err := st.Alloc(8)
		if err != nil {
			log.Fatal(err)
		}
		st.SetRoot(rootCounter, uint64(counterOff))
		v, err = st.NewVector()
		if err != nil {
			log.Fatal(err)
		}
		st.SetRoot(rootLog, uint64(v.Root()))
		fmt.Println("created a fresh store")
	} else {
		v, err = st.OpenVector(int(st.Root(rootLog)))
		if err != nil {
			log.Fatal(err)
		}
	}

	// One "session": bump the run counter, append a log record, checkpoint.
	counterOff := int(st.Root(rootCounter))
	runs := st.Heap().ReadU64(counterOff) + 1
	st.Heap().WriteU64(counterOff, runs)
	if err := v.Append(runs * 1000); err != nil {
		log.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// Persist the media image, exactly what survives power-off.
	f, err := os.Create(*path)
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Device().WriteMediaTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run #%d recorded; log now holds %d entries:", runs, v.Len())
	v.ForEach(func(i int, val uint64) bool {
		fmt.Printf(" %d", val)
		return true
	})
	fmt.Printf("\nimage saved to %s (check it with: go run ./cmd/crpmck -img %s -heap %d -segment %d)\n",
		*path, *path, opts.HeapSize, opts.SegmentSize)
}

func openOrCreate(path string, opts crpm.Options) (*crpm.Store, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			st, err := crpm.CreateStore(opts)
			return st, true, err
		}
		return nil, false, err
	}
	defer f.Close()
	dev, err := crpm.ReadDeviceFrom(f)
	if err != nil {
		return nil, false, err
	}
	st, err := crpm.OpenStore(dev, opts)
	return st, false, err
}
