// Quickstart: create a persistent store, put data in a recoverable hash
// map, checkpoint, lose power, and recover — the minimal libcrpm workflow
// of paper §3.2.
package main

import (
	"fmt"
	"log"
	"math/rand"

	crpm "libcrpm"
)

func main() {
	opts := crpm.Options{HeapSize: 8 << 20}

	// Create a store on a fresh simulated NVM device.
	st, err := crpm.CreateStore(opts)
	if err != nil {
		log.Fatal(err)
	}
	m, err := st.NewHashMap(4096)
	if err != nil {
		log.Fatal(err)
	}
	// Root pointers are how objects are found again after a restart.
	st.SetRoot(0, uint64(m.Root()))

	for k := uint64(0); k < 1000; k++ {
		if err := m.Put(k, k*k); err != nil {
			log.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d keys (epoch %d)\n", m.Len(), st.Container().CommittedEpoch())

	// Mutations after the checkpoint are not durable yet.
	if err := m.Put(42, 0xdead); err != nil {
		log.Fatal(err)
	}

	// Power failure: an arbitrary subset of unflushed cache lines reaches
	// the media; everything else is lost.
	st.Device().Crash(rand.New(rand.NewSource(7)))

	// Restart: recovery rebuilds the last committed checkpoint.
	st2, err := crpm.OpenStore(st.Device(), opts)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := st2.OpenHashMap(int(st2.Root(0)))
	if err != nil {
		log.Fatal(err)
	}
	v, ok := m2.Get(42)
	fmt.Printf("after crash: Get(42) = %d (found=%v), Len = %d\n", v, ok, m2.Len())
	if !ok || v != 42*42 {
		log.Fatalf("recovery returned %d, want the committed value %d", v, 42*42)
	}
	fmt.Println("recovered exactly the committed state ✓")

	s := st2.Device().Stats()
	fmt.Printf("device stats: %d sfences, %d media bytes written\n", s.SFences, s.MediaWriteBytes)
}
