// crashtest: an adversarial durability soak. A persistent hash map runs
// under continuous random mutation with spontaneous cache-line eviction
// enabled; at random points — including inside checkpoints, via the
// device's primitive-level fault injection — the power fails with an
// arbitrary subset of in-flight lines persisted. After every crash the
// store is recovered and audited against a shadow copy of the committed
// state. Run it with -trials to taste.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	crpm "libcrpm"
	"libcrpm/internal/nvm"
)

func main() {
	trials := flag.Int("trials", 25, "number of crash-recover cycles")
	seed := flag.Int64("seed", 1, "rng seed")
	flag.Parse()

	opts := crpm.Options{HeapSize: 4 << 20, SegmentSize: 64 << 10}
	rng := rand.New(rand.NewSource(*seed))

	// One long-lived device across all trials: state accumulates.
	size, err := opts.DeviceSize()
	if err != nil {
		log.Fatal(err)
	}
	dev := crpm.NewDevice(size, nvm.WithEvictionFuzz(0.01, rng))
	st, err := crpm.CreateStoreOn(dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	m, err := st.NewHashMap(2048)
	if err != nil {
		log.Fatal(err)
	}
	st.SetRoot(0, uint64(m.Root()))

	// committed mirrors the last checkpoint that returned; atCkpt mirrors
	// the state captured when the most recent checkpoint call *started*. A
	// crash inside a checkpoint may legally recover to either: the commit
	// point might or might not have been reached.
	committed := map[uint64]uint64{}
	atCkpt := map[uint64]uint64{}
	working := map[uint64]uint64{}
	snapshot := func(src map[uint64]uint64) map[uint64]uint64 {
		out := make(map[uint64]uint64, len(src))
		for k, v := range src {
			out[k] = v
		}
		return out
	}

	crashes := 0
	for trial := 0; trial < *trials; trial++ {
		// Mutate and checkpoint a few times, with a crash scheduled at a
		// random upcoming device primitive.
		dev.FailAfter(int64(rng.Intn(40_000) + 1))
		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.InjectedCrash); !ok {
						panic(r)
					}
					c = true
				}
			}()
			for batch := 0; batch < 8; batch++ {
				for i := 0; i < 300; i++ {
					k, v := uint64(rng.Intn(3000)), rng.Uint64()
					if err := m.Put(k, v); err != nil {
						log.Fatal(err)
					}
					working[k] = v
				}
				atCkpt = snapshot(working)
				if err := st.Checkpoint(); err != nil {
					log.Fatal(err)
				}
				committed = snapshot(working)
			}
			return false
		}()
		dev.FailAfter(-1)
		if crashed {
			crashes++
			dev.Crash(rng)
		}

		// Recover and audit: the store must hold exactly one of the two
		// legal states.
		st, err = crpm.OpenStore(dev, opts)
		if err != nil {
			log.Fatalf("trial %d: open: %v", trial, err)
		}
		m, err = st.OpenHashMap(int(st.Root(0)))
		if err != nil {
			log.Fatalf("trial %d: %v", trial, err)
		}
		matches := func(want map[uint64]uint64) bool {
			if m.Len() != len(want) {
				return false
			}
			for k, v := range want {
				if got, ok := m.Get(k); !ok || got != v {
					return false
				}
			}
			return true
		}
		switch {
		case matches(committed):
			// recovered the last completed checkpoint
		case crashed && matches(atCkpt):
			// the crash hit inside a checkpoint whose commit had landed
			committed = snapshot(atCkpt)
		default:
			log.Fatalf("trial %d: recovered state matches neither legal snapshot (%d keys recovered, %d committed, %d in-flight)",
				trial, m.Len(), len(committed), len(atCkpt))
		}
		// The working shadow restarts from the recovered state.
		working = snapshot(committed)
	}
	s := dev.Stats()
	fmt.Printf("%d trials, %d mid-flight crashes, %d keys live — every recovery matched the committed state ✓\n",
		*trials, crashes, len(committed))
	fmt.Printf("device: %d sfences, %d evicted lines, %.1f MB media writes\n",
		s.SFences, s.EvictedLines, float64(s.MediaWriteBytes)/(1<<20))
}
