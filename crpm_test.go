package crpm

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"libcrpm/internal/core"
)

func TestStoreLifecycle(t *testing.T) {
	opts := Options{HeapSize: 1 << 20, SegmentSize: 64 << 10}
	st, err := CreateStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := st.NewHashMap(256)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRoot(0, uint64(m.Root()))
	for k := uint64(0); k < 100; k++ {
		if err := m.Put(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(1, 999); err != nil { // uncommitted
		t.Fatal(err)
	}
	st.Device().Crash(rand.New(rand.NewSource(1)))

	st2, err := OpenStore(st.Device(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := st2.OpenHashMap(int(st2.Root(0)))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m2.Get(1); !ok || v != 2 {
		t.Fatalf("Get(1) = %d,%v; want committed 2", v, ok)
	}
	if m2.Len() != 100 {
		t.Fatalf("Len = %d", m2.Len())
	}
}

func TestStoreBufferedMode(t *testing.T) {
	opts := Options{HeapSize: 1 << 20, SegmentSize: 64 << 10, Mode: ModeBuffered}
	st, err := CreateStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := st.NewRBMap()
	if err != nil {
		t.Fatal(err)
	}
	st.SetRoot(0, uint64(tr.Root()))
	for k := uint64(0); k < 50; k++ {
		if err := tr.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Device().CrashDropAll()
	st2, err := OpenStore(st.Device(), opts)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := st2.OpenRBMap(int(st2.Root(0)))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 50 {
		t.Fatalf("Len = %d", tr2.Len())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRawAllocAndHeap(t *testing.T) {
	opts := Options{HeapSize: 1 << 20, SegmentSize: 64 << 10}
	st, err := CreateStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	off, err := st.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	st.Heap().WriteU64(off, 0xabcdef)
	st.SetRoot(3, uint64(off))
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Device().CrashDropAll()
	st2, err := OpenStore(st.Device(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Heap().ReadU64(int(st2.Root(3))); got != 0xabcdef {
		t.Fatalf("raw value = %#x", got)
	}
	st2.Free(int(st2.Root(3)))
}

func TestOptionsDeviceSize(t *testing.T) {
	n, err := Options{HeapSize: 4 << 20}.DeviceSize()
	if err != nil {
		t.Fatal(err)
	}
	if n < 8<<20 {
		t.Fatalf("device size %d smaller than main+backup", n)
	}
	if _, err := (Options{}).DeviceSize(); err == nil {
		t.Fatal("zero options accepted")
	}
}

// TestStoreChecksumsSurviveCorruption drives the checksummed metadata
// format through the public facade: a committed store whose metadata is
// scribbled on by a media fault must repair itself on open and recover
// exactly the committed state.
func TestStoreChecksumsSurviveCorruption(t *testing.T) {
	opts := Options{HeapSize: 1 << 20, SegmentSize: 64 << 10, Checksums: true}
	plain, err := Options{HeapSize: 1 << 20, SegmentSize: 64 << 10}.DeviceSize()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := opts.DeviceSize()
	if err != nil {
		t.Fatal(err)
	}
	if ck < plain {
		t.Fatalf("checksummed device size %d < plain %d", ck, plain)
	}
	st, err := CreateStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := st.NewHashMap(256)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRoot(0, uint64(m.Root()))
	for k := uint64(0); k < 100; k++ {
		if err := m.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Device().CrashDropAll()
	st.Device().CorruptRange(64, 64) // one metadata cache line

	st2, err := OpenStore(st.Device(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := st2.OpenHashMap(int(st2.Root(0)))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if v, ok := m2.Get(k); !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v after repair; want %d", k, v, ok, k*3)
		}
	}
}

func TestOpenStoreOnFreshDeviceFails(t *testing.T) {
	if _, err := OpenStore(NewDevice(1<<20), Options{HeapSize: 64 << 10}); err == nil {
		t.Fatal("OpenStore on unformatted device succeeded")
	}
}

func TestCreateStoreOnSmallDeviceFails(t *testing.T) {
	if _, err := CreateStoreOn(NewDevice(4096), Options{HeapSize: 1 << 20}); err == nil {
		t.Fatal("CreateStoreOn undersized device succeeded")
	}
}

func TestStoreFilePersistence(t *testing.T) {
	opts := Options{HeapSize: 1 << 20, SegmentSize: 64 << 10}
	st, err := CreateStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := st.NewHashMap(128)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRoot(0, uint64(m.Root()))
	for k := uint64(0); k < 64; k++ {
		if err := m.Put(k, k+7); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(0, 999); err != nil { // in flight at "power off"
		t.Fatal(err)
	}

	// Persist the device image to a real file and reload it, as a separate
	// process would.
	path := filepath.Join(t.TempDir(), "nvm.img")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Device().WriteMediaTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	dev, err := ReadDeviceFrom(f2)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := st2.OpenHashMap(int(st2.Root(0)))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 64 {
		t.Fatalf("Len = %d", m2.Len())
	}
	if v, ok := m2.Get(0); !ok || v != 7 {
		t.Fatalf("Get(0) = %d,%v; want committed 7", v, ok)
	}
}

func TestEADRModelExported(t *testing.T) {
	if EADRCostModel().CLWBPS >= DefaultCostModel().CLWBPS {
		t.Fatal("eADR model not cheaper")
	}
}

func TestConcurrentStoreWithCollective(t *testing.T) {
	opts := Options{HeapSize: 1 << 20, SegmentSize: 64 << 10, Concurrent: true}
	st, err := CreateStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	const threads = 4
	g := core.NewCollective(st.Container(), threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			h := st.Heap()
			base := 4096 + tid*8192
			for epoch := 0; epoch < 3; epoch++ {
				for i := 0; i < 50; i++ {
					h.WriteU64(base+i*8, uint64(epoch*100+i))
				}
				if err := g.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	st.Device().CrashDropAll()
	st2, err := OpenStore(st.Device(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < threads; tid++ {
		base := 4096 + tid*8192
		if got := st2.Heap().ReadU64(base); got != 200 {
			t.Fatalf("thread %d slot 0 = %d, want 200", tid, got)
		}
	}
}

func TestStoreVector(t *testing.T) {
	opts := Options{HeapSize: 1 << 20, SegmentSize: 64 << 10}
	st, err := CreateStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	v, err := st.NewVector()
	if err != nil {
		t.Fatal(err)
	}
	st.SetRoot(0, uint64(v.Root()))
	for i := uint64(0); i < 100; i++ {
		if err := v.Append(i * i); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_ = v.Append(12345) // uncommitted
	st.Device().CrashDropAll()
	st2, err := OpenStore(st.Device(), opts)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := st2.OpenVector(int(st2.Root(0)))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Len() != 100 {
		t.Fatalf("Len = %d", v2.Len())
	}
	if got := v2.Get(9); got != 81 {
		t.Fatalf("v[9] = %d", got)
	}
}
