# libcrpm-go developer targets.

GO ?= go

.PHONY: all build test test-short race cover bench fuzz torture serve replica elastic results examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/core/ ./internal/mpi/ ./internal/apps/... ./internal/sched/ ./internal/replica/ ./internal/server/ ./internal/torture/ .
	$(GO) test -race -short ./internal/harness/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz FuzzCrashNeverCorruptsFencedData -fuzztime 30s ./internal/nvm/
	$(GO) test -fuzz FuzzReadDeviceFrom -fuzztime 30s ./internal/nvm/
	$(GO) test -fuzz FuzzAllocFree -fuzztime 30s ./internal/alloc/
	$(GO) test -fuzz FuzzRegionCheck -fuzztime 30s ./internal/region/

# Exhaustive crash-consistency sweep: every crash point under every crash
# policy in every container mode (see DESIGN.md §7).
torture:
	$(GO) test ./internal/torture/
	$(GO) run ./cmd/crpmtorture
	$(GO) run ./cmd/crpmtorture -adversarial -checksums=false

# Sharded recoverable KV service smoke: YCSB-A over coordinated per-shard
# checkpoints with full acked-op verification (see DESIGN.md §10).
serve:
	$(GO) run ./cmd/crpmserve -shards 4 -clients 8 -mix a -ops 1000000

# Replication study: race-mode unit sweep over the replica/SLA/failover
# surface, then a kill-primary smoke that crashes shard 1's primary
# mid-serve and promotes its most-current secondary (see DESIGN.md §12).
replica:
	$(GO) test -race ./internal/replica/
	$(GO) test -race -run 'Replica|SLA|Failover|AbortedIncrementalCut|KillPrimary' ./internal/server/ ./internal/mpi/ ./internal/torture/
	$(GO) run ./cmd/crpmserve -shards 4 -clients 8 -mix b -ops 200000 -replicas 2 -sla mix -killprimary 1

# Elastic resharding study: race-mode sweep over the ring, dynamic
# membership, and migration surface, a live split+merge crpmserve run,
# then the before/during/after figure (see DESIGN.md §15).
elastic:
	$(GO) test -race ./internal/ring/
	$(GO) test -race -run 'Ring|Router|Migrat|AutoSplit|Split|Merge|Grow|Leave|Membership' ./internal/server/ ./internal/mpi/
	$(GO) run ./cmd/crpmserve -shards 2 -clients 4 -ops 200000 -policy ops:4096 -migrate 'split:0@2,merge:2>1@6'
	$(GO) run ./cmd/crpmbench -exp elastic

# Open-loop latency SLO study: race-mode sweep over the measurement rig,
# a coordinated-omission-free crpmserve run at fixed offered load, then
# the throughput-vs-p99 curve per backend x cut policy (see DESIGN.md §14).
slo:
	$(GO) test -race ./internal/measure/
	$(GO) run ./cmd/crpmserve -shards 4 -clients 8 -mix a -target 4e6 -duration 50ms -warmup 20000 -dist uniform
	$(GO) run ./cmd/crpmbench -exp slo

# Regenerate every table and figure of the paper's evaluation.
results:
	$(GO) run ./cmd/crpmbench -exp all -scale small

results-medium:
	$(GO) run ./cmd/crpmbench -exp all -scale medium

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/lulesh
	$(GO) run ./examples/crashtest -trials 8
	$(GO) run ./examples/filestore -reset

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
