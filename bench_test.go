// Benchmarks regenerating every table and figure of the paper's evaluation
// (run `go test -bench=. -benchmem`), plus micro-benchmarks of the hot
// paths. Each experiment bench executes the corresponding harness function
// once per iteration and logs the produced table; derived headline numbers
// are attached as custom metrics so `benchstat` can track them.
package crpm

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"libcrpm/internal/harness"
	"libcrpm/internal/workload"
)

// benchScale trims the small scale so the full bench suite stays in the
// minutes range.
func benchScale() harness.Scale {
	sc := harness.SmallScale()
	sc.Ops = 40_000
	sc.Keys = 60_000
	return sc
}

// tableCell extracts a float cell by row name for metric reporting.
func tableCell(tb harness.Table, rowName string, col int) float64 {
	for _, r := range tb.Rows {
		if r[0] == rowName {
			v, _ := strconv.ParseFloat(r[col], 64)
			return v
		}
	}
	return 0
}

func BenchmarkFig1Breakdown(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb, err := harness.Fig1Breakdown(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
			b.ReportMetric(tableCell(tb, "libcrpm-Default", 2), "crpm-exec-%")
		}
	}
}

func BenchmarkFig7HashMap(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb, err := harness.Fig7Throughput(sc, harness.DSHashMap)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
			b.ReportMetric(tableCell(tb, "libcrpm-Default", 2), "crpm-balanced-Mops")
			b.ReportMetric(tableCell(tb, "NVM-NP", 2), "nvmnp-balanced-Mops")
		}
	}
}

func BenchmarkFig7RBMap(b *testing.B) {
	sc := benchScale()
	sc.Ops = 20_000
	sc.Keys = 20_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.Fig7Throughput(sc, harness.DSRBMap)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
			b.ReportMetric(tableCell(tb, "libcrpm-Default", 2), "crpm-balanced-Mops")
		}
	}
}

func BenchmarkFig8Apps(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb, err := harness.Fig8Apps(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkFig9Interval(b *testing.B) {
	sc := benchScale()
	sc.Ops = 25_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.Fig9Interval(sc, harness.DSHashMap)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkFig10aSegment(b *testing.B) {
	sc := benchScale()
	sc.Ops = 25_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.Fig10aSegment(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkFig10bBlock(b *testing.B) {
	sc := benchScale()
	sc.Ops = 25_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.Fig10bBlock(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkTable1aCheckpointSize(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb, err := harness.Table1a(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
			b.ReportMetric(tableCell(tb, "libcrpm-Default", 2), "crpm-B/op-balanced")
			b.ReportMetric(tableCell(tb, "Mprotect", 2), "mprotect-B/op-balanced")
		}
	}
}

func BenchmarkTable1bFences(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb, err := harness.Table1b(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
			b.ReportMetric(tableCell(tb, "libcrpm-Default", 2), "crpm-fences/epoch")
			b.ReportMetric(tableCell(tb, "Undo-log", 2), "undolog-fences/epoch")
		}
	}
}

func BenchmarkRecoveryTime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb, err := harness.RecoveryTime(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkStorageCost(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb, err := harness.StorageCost(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkAblationEagerCoW(b *testing.B) {
	sc := benchScale()
	sc.Ops = 25_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.AblationEagerCoW(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkAblationDifferentialCopy(b *testing.B) {
	sc := benchScale()
	sc.Ops = 25_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.AblationDifferentialCopy(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkAblationFlushThreshold(b *testing.B) {
	sc := benchScale()
	sc.Ops = 25_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.AblationFlushThreshold(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkAblationBackupRatio(b *testing.B) {
	sc := benchScale()
	sc.Ops = 25_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.AblationBackupRatio(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkAblationFTIIncremental(b *testing.B) {
	sc := benchScale()
	sc.Ops = 25_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.AblationFTIIncremental(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkAblationBufferedVsDefault(b *testing.B) {
	sc := benchScale()
	sc.Ops = 25_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.AblationBufferedVsDefault(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

// --- micro-benchmarks of the public API hot paths ---

func newBenchStore(b *testing.B, mode Mode) (*Store, *HashMap) {
	b.Helper()
	st, err := CreateStore(Options{HeapSize: 16 << 20, Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	m, err := st.NewHashMap(1 << 15)
	if err != nil {
		b.Fatal(err)
	}
	return st, m
}

func BenchmarkHashMapPutDefault(b *testing.B) {
	_, m := newBenchStore(b, ModeDefault)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Put(uint64(i)%50_000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashMapPutBuffered(b *testing.B) {
	_, m := newBenchStore(b, ModeBuffered)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Put(uint64(i)%50_000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashMapGet(b *testing.B) {
	_, m := newBenchStore(b, ModeDefault)
	for k := uint64(0); k < 50_000; k++ {
		if err := m.Put(k, k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i) % 50_000)
	}
}

func BenchmarkRBMapPut(b *testing.B) {
	st, err := CreateStore(Options{HeapSize: 32 << 20})
	if err != nil {
		b.Fatal(err)
	}
	m, err := st.NewRBMap()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Put(uint64(i)%100_000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointLatency(b *testing.B) {
	st, m := newBenchStore(b, ModeDefault)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 200; j++ {
			if err := m.Put(uint64(rng.Intn(50_000)), rng.Uint64()); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := st.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryLatency(b *testing.B) {
	opts := Options{HeapSize: 16 << 20}
	st, m := newBenchStore(b, ModeDefault)
	st.SetRoot(0, uint64(m.Root()))
	for k := uint64(0); k < 50_000; k++ {
		if err := m.Put(k, k); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 100; j++ {
			if err := m.Put(uint64(rng.Intn(50_000)), 1); err != nil {
				b.Fatal(err)
			}
		}
		st.Device().Crash(rng)
		b.StartTimer()
		st2, err := OpenStore(st.Device(), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		m, err = st2.OpenHashMap(int(st2.Root(0)))
		if err != nil {
			b.Fatal(err)
		}
		st = st2
		b.StartTimer()
	}
}

// BenchmarkEndToEndWorkload runs the paper's balanced epoch loop on the
// public API, reporting simulated throughput alongside wall time.
func BenchmarkEndToEndWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, m := newBenchStore(b, ModeDefault)
		d := &workload.Driver{
			KV:         m,
			Clock:      st.Device().Clock(),
			Checkpoint: st.Checkpoint,
			Interval:   2 * time.Millisecond,
			Zipf:       workload.NewZipfian(30_000, 0.99),
			Rng:        rand.New(rand.NewSource(3)),
		}
		if err := d.Populate(30_000); err != nil {
			b.Fatal(err)
		}
		res, err := d.Run(workload.Balanced, 30_000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Throughput/1e6, "sim-Mops")
		}
	}
}

func BenchmarkAblationEADR(b *testing.B) {
	sc := benchScale()
	sc.Ops = 20_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.AblationEADR(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

func BenchmarkPauseTimes(b *testing.B) {
	sc := benchScale()
	sc.Ops = 20_000
	for i := 0; i < b.N; i++ {
		tb, err := harness.PauseTimes(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

// BenchmarkOnWriteBackends measures the real (wall-clock) cost of the
// OnWrite hot path of every backend at every crossover write size: one
// traced, size-aligned write per iteration over a uniform offset stream,
// with a checkpoint every 512 writes to keep epochs realistic. The
// simulated per-op cost of the same matrix is the harness OnWriteMicro
// table (crpmbench -exp crossover).
func BenchmarkOnWriteBackends(b *testing.B) {
	const heapSize = 1 << 20
	for _, sys := range harness.OnWriteSystems() {
		for _, size := range harness.OnWriteSizes() {
			b.Run(fmt.Sprintf("%s/%dB", sys, size), func(b *testing.B) {
				bk, err := harness.NewArenaBackend(sys, heapSize)
				if err != nil {
					b.Fatal(err)
				}
				nSlots := heapSize / size
				rng := rand.New(rand.NewSource(42))
				buf := make([]byte, size)
				rng.Read(buf)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					off := rng.Intn(nSlots) * size
					bk.OnWrite(off, size)
					bk.Write(off, buf)
					if i%512 == 511 {
						if err := bk.Checkpoint(); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkCrossover regenerates the InCLL-vs-differential crossover
// figure once per iteration, reporting the headline cell.
func BenchmarkCrossover(b *testing.B) {
	sc := benchScale()
	sc.Ops = 16_000
	sc.HeapSize = 4 << 20
	for i := 0; i < b.N; i++ {
		tb, err := harness.CrossoverFigure(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb)
			b.ReportMetric(tb.Metrics["xover_mops/8B/uniform/update-heavy/InCLL"], "incll-8B-sim-Mops")
		}
	}
}
