package crpm

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun builds and executes every runnable example, keeping the
// documentation honest: a demo that stops working fails CI.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples invoke the go toolchain")
	}
	cases := []struct {
		dir  string
		args []string
		want []string
	}{
		{"quickstart", nil, []string{"recovered exactly the committed state"}},
		{"kvstore", nil, []string{"hash and tree indexes agree", "recovered tree passes"}},
		{"lulesh", nil, []string{"bit-identical to the uninterrupted run"}},
		{"crashtest", []string{"-trials", "4"}, []string{"matched the committed state"}},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			out := runExample(t, c.dir, c.args...)
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestFilestoreExamplePersistsAcrossRuns executes the filestore example
// twice against one image file — two real processes sharing one "NVM DIMM".
func TestFilestoreExamplePersistsAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("examples invoke the go toolchain")
	}
	img := filepath.Join(t.TempDir(), "store.img")
	first := runExample(t, "filestore", "-img", img)
	if !strings.Contains(first, "run #1") {
		t.Fatalf("first run: %s", first)
	}
	second := runExample(t, "filestore", "-img", img)
	if !strings.Contains(second, "run #2") || !strings.Contains(second, "2 entries") {
		t.Fatalf("second run did not resume from the image:\n%s", second)
	}
}

func runExample(t *testing.T, dir string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./examples/" + dir}, args...)...)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", dir, err, out)
	}
	return string(out)
}
