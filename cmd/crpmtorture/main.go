// Command crpmtorture runs the adversarial crash-consistency sweep from a
// shell, for CI and for soak runs: a deterministic scripted workload is
// replayed once per crash point, crashing after the k-th device primitive
// under each crash policy (seeded-random, persist-all, drop-all, and
// optionally the alternating adversary), in each container mode (default,
// buffered, eager-CoW). Every crash image is reopened, recovered, fsck'd,
// and diffed against the committed shadow state.
//
// Usage:
//
//	crpmtorture                 # full sweep, exit 1 on any violation
//	crpmtorture -quick          # strided sweep for fast CI
//	crpmtorture -stride 7       # custom stride
//	crpmtorture -checksums=false  # sweep the plain (v1) metadata format
package main

import (
	"flag"
	"fmt"
	"os"

	"libcrpm/internal/obs"
	"libcrpm/internal/torture"
)

func main() {
	quick := flag.Bool("quick", false, "strided quick sweep (stride 17, shorter script)")
	stride := flag.Int("stride", 1, "test every N-th crash point")
	steps := flag.Int("steps", 0, "workload steps (default 240)")
	ckptEvery := flag.Int("ckpt-every", 0, "steps between checkpoints (default 60)")
	seed := flag.Int64("seed", 1, "script and policy seed")
	checksums := flag.Bool("checksums", true, "run with the metadata checksum extension")
	adversarial := flag.Bool("adversarial", false, "add the alternating per-line adversary policy")
	backend := flag.String("backend", "core", "systems to sweep: core (default/buffered/eager-cow), incll (in-cache-line logging, with its media-fault grid), all")
	liveness := flag.Bool("liveness", true, "verify each recovered container still checkpoints")
	parallel := flag.Int("parallel", 0, "crash-point replays in flight (0 = GOMAXPROCS, 1 = serial); output is byte-identical at any setting")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of each mode's reference-run phase spans to this file")
	flag.Parse()

	cfg := torture.Config{
		Steps:     *steps,
		CkptEvery: *ckptEvery,
		Seed:      *seed,
		Stride:    *stride,
		Checksums: *checksums,
		Liveness:  *liveness,
		Parallel:  *parallel,
		Trace:     *tracePath != "",
		Progress: func(mode, policy string, points, violations int) {
			fmt.Printf("%-10s %-12s %5d crash points  %d violations\n", mode, policy, points, violations)
		},
	}
	if *quick {
		if cfg.Stride == 1 {
			cfg.Stride = 17
		}
		cfg.Steps = 120
		cfg.CkptEvery = 40
	}
	if *adversarial {
		cfg.Policies = append(torture.StandardPolicies(*seed), torture.AdversarialPolicy())
	}
	switch *backend {
	case "core":
		// nil Modes selects the standard core trio.
	case "incll":
		cfg.Modes = []torture.Mode{torture.InCLLMode()}
		cfg.Faults = append([]torture.Fault{{}}, torture.InCLLFaults()...)
	case "all":
		// The media-fault grid is incll-specific, so the combined sweep
		// runs the core trio fault-free plus incll's own grid.
		cfg.Modes = append(torture.StandardModes(), torture.InCLLMode())
	default:
		fmt.Fprintf(os.Stderr, "unknown -backend %q (core|incll|all)\n", *backend)
		os.Exit(2)
	}

	res, err := torture.Sweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("total: %d replays\n", res.Replays)
	if *tracePath != "" {
		tr := res.Trace
		if tr == nil {
			tr = &obs.Trace{}
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		err = obs.WriteChromeTrace(f, tr)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d tracks)\n", *tracePath, len(tr.Tracks))
	}
	if !res.OK() {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", v)
		}
		fmt.Fprintf(os.Stderr, "%d consistency violations\n", len(res.Violations))
		os.Exit(1)
	}
	fmt.Println("torture sweep passed: no consistency violations")
}
