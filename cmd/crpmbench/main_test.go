package main

import (
	"strings"
	"testing"

	"libcrpm/internal/harness"
)

func TestExperimentRegistry(t *testing.T) {
	exps := experiments()
	if len(exps) < 11 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.name == "" || e.desc == "" || e.run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if e.name != strings.ToLower(e.name) {
			t.Fatalf("experiment name %q not lower case", e.name)
		}
		if seen[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
	}
	for _, want := range []string{"fig1", "fig7", "fig8", "fig9", "fig10a", "fig10b", "table1a", "table1b", "recovery", "storage", "ablations"} {
		if !seen[want] {
			t.Fatalf("experiment %q missing", want)
		}
	}
}

func TestOneWrapper(t *testing.T) {
	called := false
	f := one(func(sc harness.Scale) (harness.Table, error) {
		called = true
		return harness.Table{Title: "x"}, nil
	})
	tabs, err := f(harness.SmallScale())
	if err != nil || len(tabs) != 1 || tabs[0].Title != "x" || !called {
		t.Fatalf("one() wrapper broken: %v %v", tabs, err)
	}
}
