// Command crpmbench regenerates the tables and figures of the libcrpm paper
// (DAC 2022) on the simulated NVM substrate.
//
// Usage:
//
//	crpmbench -exp all                 # everything, small scale
//	crpmbench -exp fig7 -scale medium  # one experiment, bigger inputs
//	crpmbench -list
//
// Experiments: fig1, fig7, fig8, fig9, fig10a, fig10b, table1a, table1b,
// service, replica, crossover, slo, elastic, recovery, pauses, storage,
// ablations, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"libcrpm/internal/harness"
	"libcrpm/internal/obs"
)

type experiment struct {
	name string
	desc string
	run  func(harness.Scale) ([]harness.Table, error)
}

func one(f func(harness.Scale) (harness.Table, error)) func(harness.Scale) ([]harness.Table, error) {
	return func(sc harness.Scale) ([]harness.Table, error) {
		t, err := f(sc)
		if err != nil {
			return nil, err
		}
		return []harness.Table{t}, nil
	}
}

func experiments() []experiment {
	return []experiment{
		{"fig1", "execution-time breakdown of unordered_map (Figure 1)", one(harness.Fig1Breakdown)},
		{"fig7", "throughput of map and unordered_map across workloads (Figure 7)", func(sc harness.Scale) ([]harness.Table, error) {
			h, err := harness.Fig7Throughput(sc, harness.DSHashMap)
			if err != nil {
				return nil, err
			}
			r, err := harness.Fig7Throughput(sc, harness.DSRBMap)
			if err != nil {
				return nil, err
			}
			return []harness.Table{h, r}, nil
		}},
		{"fig8", "relative execution time of LULESH/HPCCG/CoMD (Figure 8)", one(harness.Fig8Apps)},
		{"fig9", "throughput vs checkpoint interval (Figure 9)", func(sc harness.Scale) ([]harness.Table, error) {
			h, err := harness.Fig9Interval(sc, harness.DSHashMap)
			if err != nil {
				return nil, err
			}
			r, err := harness.Fig9Interval(sc, harness.DSRBMap)
			if err != nil {
				return nil, err
			}
			return []harness.Table{h, r}, nil
		}},
		{"fig10a", "throughput vs segment size (Figure 10a)", one(harness.Fig10aSegment)},
		{"fig10b", "throughput vs block size (Figure 10b)", one(harness.Fig10bBlock)},
		{"table1a", "average checkpoint size per operation (Table 1a)", one(harness.Table1a)},
		{"table1b", "sfence instructions per epoch (Table 1b)", one(harness.Table1b)},
		{"service", "sharded KV service throughput and cut pause vs shard count, stop-the-world and incremental pause-budget cuts (extension)", one(harness.ServiceFigure)},
		{"replica", "replicated service read throughput, staleness, and SLA-unmet fraction vs replica count x SLA (extension)", one(harness.ReplicaFigure)},
		{"crossover", "InCLL vs differential checkpointing: write-size x locality x mix crossover, the per-backend OnWrite micro matrix, and the per-backend service scaling study (extension)", func(sc harness.Scale) ([]harness.Table, error) {
			x, err := harness.CrossoverFigure(sc)
			if err != nil {
				return nil, err
			}
			m, err := harness.OnWriteMicro(sc)
			if err != nil {
				return nil, err
			}
			s, err := harness.ServiceBackendFigure(sc)
			if err != nil {
				return nil, err
			}
			return []harness.Table{x, m, s}, nil
		}},
		{"slo", "open-loop throughput vs p99 latency per backend x cut policy, coordinated-omission-free (extension)", one(harness.SLOFigure)},
		{"elastic", "live shard split under open-loop load: throughput and p99 before/during/after the migration (extension)", one(harness.ElasticFigure)},
		{"recovery", "LULESH recovery time (§5.5)", one(harness.RecoveryTime)},
		{"pauses", "checkpoint pause-time distribution (extension)", one(harness.PauseTimes)},
		{"storage", "storage cost of LULESH (§5.6)", one(harness.StorageCost)},
		{"ablations", "design-choice ablations (eager CoW, diff copy, flush path, backup ratio, FTI hashing, modes)", func(sc harness.Scale) ([]harness.Table, error) {
			var out []harness.Table
			for _, f := range []func(harness.Scale) (harness.Table, error){
				harness.AblationEagerCoW,
				harness.AblationDifferentialCopy,
				harness.AblationFlushThreshold,
				harness.AblationBackupRatio,
				harness.AblationFTIIncremental,
				harness.AblationBufferedVsDefault,
				harness.AblationEADR,
			} {
				t, err := f(sc)
				if err != nil {
					return nil, err
				}
				out = append(out, t)
			}
			return out, nil
		}},
	}
}

func main() { os.Exit(run()) }

// run is main's body; it returns the exit code so that deferred profile
// writers execute before the process exits.
func run() int {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	scaleName := flag.String("scale", "small", "input scale: small | medium | paper (paper needs ~10GB RAM and hours)")
	format := flag.String("format", "text", "output format: text | csv")
	list := flag.Bool("list", false, "list experiments and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the experiments finish) to this file")
	parallel := flag.Int("parallel", 0, "experiment cells in flight (0 = GOMAXPROCS, 1 = serial); tables are byte-identical at any setting")
	jsonOut := flag.Bool("json", false, "also write a BENCH_<scale>.json perf trajectory (wall-clock per experiment, simulated-clock and checkpoint-byte metrics)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the traced experiments' phase spans to this file; timestamps are simulated, so the file is byte-identical at any -parallel")
	progress := flag.Bool("progress", false, "report sweep progress (cells done/total) on stderr")
	flag.Parse()

	harness.SetParallelism(*parallel)
	// -json wants the per-phase span_ms metrics in the trajectory, so both
	// flags turn per-cell tracing on.
	harness.SetTracing(*tracePath != "" || *jsonOut)
	if *progress {
		harness.SetProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Create eagerly so a bad path fails before hours of simulation.
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 1
		}
		defer func() {
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return 0
	}

	var sc harness.Scale
	switch *scaleName {
	case "small":
		sc = harness.SmallScale()
	case "medium":
		sc = harness.MediumScale()
	case "paper":
		sc = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (small|medium|paper)\n", *scaleName)
		return 2
	}

	var selected []experiment
	if *exp == "all" {
		selected = exps
	} else {
		for _, e := range exps {
			if e.name == strings.ToLower(*exp) {
				selected = []experiment{e}
			}
		}
		if selected == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			return 2
		}
	}

	var traj benchTrajectory
	runStart := time.Now()
	for _, e := range selected {
		start := time.Now()
		tables, err := e.run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			return 1
		}
		for _, t := range tables {
			if *format == "csv" {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t)
			}
		}
		if *format != "csv" {
			fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
		traj.add(e.name, time.Since(start), tables)
	}
	if *jsonOut {
		path := fmt.Sprintf("BENCH_%s.json", sc.Name)
		if err := traj.write(path, sc.Name, *parallel, time.Since(runStart)); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	if *tracePath != "" {
		tr := harness.TakeTrace()
		if tr == nil {
			tr = &obs.Trace{}
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 1
		}
		err = obs.WriteChromeTrace(f, tr)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d tracks; open at ui.perfetto.dev)\n", *tracePath, len(tr.Tracks))
	}
	return 0
}

// benchTrajectory accumulates the -json perf record: per-experiment
// wall-clock plus whatever machine-readable metrics the tables collected
// (simulated-clock totals, checkpoint bytes per op). Subsequent PRs diff
// these files to catch harness performance regressions.
type benchTrajectory struct {
	Experiments []benchExperiment `json:"experiments"`
}

type benchExperiment struct {
	Name   string       `json:"name"`
	WallMS float64      `json:"wall_ms"`
	Tables []benchTable `json:"tables"`
}

type benchTable struct {
	Title   string             `json:"title"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func (tr *benchTrajectory) add(name string, wall time.Duration, tables []harness.Table) {
	e := benchExperiment{Name: name, WallMS: float64(wall.Microseconds()) / 1000}
	for _, t := range tables {
		e.Tables = append(e.Tables, benchTable{Title: t.Title, Metrics: t.Metrics})
	}
	tr.Experiments = append(tr.Experiments, e)
}

func (tr *benchTrajectory) write(path, scale string, parallel int, total time.Duration) error {
	out := struct {
		Scale       string            `json:"scale"`
		Parallel    int               `json:"parallel"`
		GOMAXPROCS  int               `json:"gomaxprocs"`
		TotalWallMS float64           `json:"total_wall_ms"`
		Experiments []benchExperiment `json:"experiments"`
	}{
		Scale:       scale,
		Parallel:    parallel,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TotalWallMS: float64(total.Microseconds()) / 1000,
		Experiments: tr.Experiments,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
