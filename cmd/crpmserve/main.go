// Command crpmserve runs the sharded recoverable KV service against a
// YCSB workload on simulated NVM devices: N shards (one container, one
// device, one request-loop rank each), M deterministic client streams, and
// policy-driven coordinated consistent cuts, with full shadow verification
// of every acked operation at the end of the run.
//
// Usage:
//
//	crpmserve -shards 4 -clients 8 -mix a -ops 1000000
//	crpmserve -mix e -ds rbmap -policy interval:8ms -trace serve.trace.json
//	crpmserve -shards 4 -clients 8 -mix a -ops 200000 -json serve.json
//	crpmserve -replicas 2 -sla mix -mix b -ops 200000
//	crpmserve -replicas 2 -sla bounded:2@1ms -killprimary 1
//	crpmserve -target 4e6 -duration 50ms -warmup 20000 -dist uniform
//	crpmserve -target 8e6 -ops 400000 -status
//	crpmserve -shards 2 -migrate split:0@2,merge:2>1@5
//	crpmserve -shards 2 -autosplit 4
//
// -migrate schedules live shard migrations (checkpoint-seeded snapshot
// ship, delta catch-up, atomic ring flip at a coordinated cut);
// -autosplit lets the service split its hottest shard on its own, up to
// the given live-shard cap. Both exclude -replicas.
//
// -target turns the run open-loop: requests arrive on a fixed-rate schedule
// of simulated timestamps and latency is charged from each op's intended
// arrival, so queueing behind a checkpoint pause is billed to every waiting
// op (coordinated-omission-free). With -duration the run is time-bounded
// (the op count follows from the offered load); otherwise -ops bounds it.
//
// All output on stdout (and in -json / -trace files) is a pure function of
// the flags: timestamps are simulated picoseconds and streams are label-hash
// seeded, so runs are byte-identical at any -parallel level. Wall-clock is
// reported on stderr only. Exit code is non-zero if verification finds any
// consistency violation.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"libcrpm/internal/core"
	"libcrpm/internal/harness"
	"libcrpm/internal/measure"
	"libcrpm/internal/obs"
	"libcrpm/internal/replica"
	"libcrpm/internal/server"
	"libcrpm/internal/workload"
)

// ErrBadFlags wraps every replication flag rejection, so scripts (and the
// tests) can distinguish a usage error from a run failure.
var ErrBadFlags = errors.New("crpmserve: invalid flags")

// validateReplFlags checks the replication flag set and resolves -sla.
// Replication is strictly opt-in: -sla and -killprimary are meaningless
// without secondaries to route to or promote, so they require -replicas.
func validateReplFlags(replicas int, slaSpec string, killPrimary, shards int) ([]replica.SLA, error) {
	if replicas < 0 {
		return nil, fmt.Errorf("%w: -replicas %d is negative", ErrBadFlags, replicas)
	}
	if slaSpec != "" && replicas == 0 {
		return nil, fmt.Errorf("%w: -sla %q requires -replicas > 0", ErrBadFlags, slaSpec)
	}
	if killPrimary >= 0 && replicas == 0 {
		return nil, fmt.Errorf("%w: -killprimary requires -replicas > 0 (no secondary to promote)", ErrBadFlags)
	}
	if killPrimary >= shards {
		return nil, fmt.Errorf("%w: -killprimary %d out of range (shards: %d)", ErrBadFlags, killPrimary, shards)
	}
	if slaSpec == "" {
		return nil, nil
	}
	set, err := replica.ParseSet(slaSpec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFlags, err)
	}
	return set, nil
}

// validateMeasureFlags checks the open-loop flag set. The rig is strictly
// opt-in via -target: -duration and -warmup shape the arrival schedule, so
// they are meaningless without one.
func validateMeasureFlags(target float64, duration time.Duration, warmup int) (*measure.Config, error) {
	if target < 0 {
		return nil, fmt.Errorf("%w: -target %v is negative", ErrBadFlags, target)
	}
	if target == 0 {
		if duration > 0 {
			return nil, fmt.Errorf("%w: -duration requires -target > 0 (no arrival schedule to bound)", ErrBadFlags)
		}
		if warmup > 0 {
			return nil, fmt.Errorf("%w: -warmup requires -target > 0 (no measured window to open)", ErrBadFlags)
		}
		return nil, nil
	}
	if duration < 0 {
		return nil, fmt.Errorf("%w: -duration %v is negative", ErrBadFlags, duration)
	}
	if warmup < 0 {
		return nil, fmt.Errorf("%w: -warmup %d is negative", ErrBadFlags, warmup)
	}
	return &measure.Config{
		TargetOps:  target,
		WarmupOps:  warmup,
		DurationPS: duration.Nanoseconds() * 1000,
	}, nil
}

// parseMigrations parses the -migrate spec: comma-separated
// KIND:SRC[>DST][@CUTS] entries, e.g. "split:0@2,move:1>2@4,merge:3>1@6".
// split picks its own destination (the next fresh rank); move and merge
// require one. @CUTS delays the start until that many committed cuts.
func parseMigrations(spec string) ([]server.MigrateSpec, error) {
	var out []server.MigrateSpec
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(ent, ":")
		if !ok || rest == "" {
			return nil, fmt.Errorf("%w: -migrate entry %q: want KIND:SRC[>DST][@CUTS]", ErrBadFlags, ent)
		}
		after := 0
		addr := rest
		if a, cuts, ok := strings.Cut(rest, "@"); ok {
			n, err := strconv.Atoi(cuts)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("%w: -migrate entry %q: cut count %q (want a positive integer)", ErrBadFlags, ent, cuts)
			}
			addr, after = a, n
		}
		srcStr, dstStr, hasDst := strings.Cut(addr, ">")
		src, err := strconv.Atoi(srcStr)
		if err != nil || src < 0 {
			return nil, fmt.Errorf("%w: -migrate entry %q: source shard %q", ErrBadFlags, ent, srcStr)
		}
		dst := 0
		if hasDst {
			if dst, err = strconv.Atoi(dstStr); err != nil || dst < 0 {
				return nil, fmt.Errorf("%w: -migrate entry %q: destination shard %q", ErrBadFlags, ent, dstStr)
			}
		}
		var kind server.MigrateKind
		switch kindStr {
		case "split":
			if hasDst {
				return nil, fmt.Errorf("%w: -migrate entry %q: split spawns its own destination (no >DST)", ErrBadFlags, ent)
			}
			kind = server.MigrateSplit
		case "move":
			kind = server.MigrateMove
		case "merge":
			kind = server.MigrateMerge
		default:
			return nil, fmt.Errorf("%w: -migrate entry %q: unknown kind %q (split|move|merge)", ErrBadFlags, ent, kindStr)
		}
		if (kind == server.MigrateMove || kind == server.MigrateMerge) && !hasDst {
			return nil, fmt.Errorf("%w: -migrate entry %q: %s needs a destination (SRC>DST)", ErrBadFlags, ent, kindStr)
		}
		out = append(out, server.MigrateSpec{Kind: kind, Src: src, Dst: dst, AfterCuts: after})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: -migrate %q has no entries", ErrBadFlags, spec)
	}
	return out, nil
}

// validateMigrateFlags checks the elastic-resharding flag set. Migration
// excludes replication (a moved span would strand its secondaries'
// deltas), and -migrate / -autosplit are mutually exclusive schedulers of
// the same migration engine.
func validateMigrateFlags(migrateSpec string, autosplit, replicas int) ([]server.MigrateSpec, server.AutoSplitSpec, error) {
	var as server.AutoSplitSpec
	if migrateSpec == "" && autosplit == 0 {
		return nil, as, nil
	}
	if replicas > 0 {
		return nil, as, fmt.Errorf("%w: %v", ErrBadFlags, server.ErrMigrateReplicas)
	}
	if migrateSpec != "" && autosplit > 0 {
		return nil, as, fmt.Errorf("%w: -migrate and -autosplit are mutually exclusive", ErrBadFlags)
	}
	if autosplit < 0 {
		return nil, as, fmt.Errorf("%w: -autosplit %d is negative", ErrBadFlags, autosplit)
	}
	if autosplit > 0 {
		as.MaxShards = autosplit
		return nil, as, nil
	}
	specs, err := parseMigrations(migrateSpec)
	return specs, as, err
}

func main() { os.Exit(run()) }

func run() int {
	shards := flag.Int("shards", 4, "shard count (one container+device+rank per shard)")
	clients := flag.Int("clients", 8, "client stream count")
	mixName := flag.String("mix", "a", "YCSB mix: a-f or crud")
	ops := flag.Int("ops", 200_000, "total operations across all clients")
	keys := flag.Uint64("keys", 100_000, "initially populated key-space size")
	backend := flag.String("backend", "default", "checkpoint backend: default | buffered (libcrpm container modes) | incll (in-cache-line logging)")
	ds := flag.String("ds", "hashmap", "per-shard structure: hashmap | rbmap")
	policySpec := flag.String("policy", "ops:16384", "cut policy: ops:N | interval:DUR | dirty:BYTES | pause:DUR (pause budget; enables the incremental pipeline)")
	heap := flag.Int("heap", 8<<20, "per-shard container heap bytes")
	buckets := flag.Int("buckets", 1<<15, "hash-map buckets per shard")
	batch := flag.Int("batch", 2048, "global ops per policy decision batch")
	budget := flag.Int("budget", 0, "incremental checkpoint quantum in bytes per step; 0 = stop-the-world cuts (pause policies default it)")
	seed := flag.Int64("seed", 1, "label-hash seed for all client streams")
	parallel := flag.Int("parallel", 0, "verification cells in flight (0 = GOMAXPROCS); never changes output bytes")
	jsonPath := flag.String("json", "", "write per-shard and aggregate metrics (harness table schema) to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of per-shard spans to this file")
	target := flag.Float64("target", 0, "open-loop offered load in ops per simulated second (0 = closed-loop); latency is then also charged from each op's intended arrival")
	duration := flag.Duration("duration", 0, "time-bound the measured window in simulated time (requires -target; overrides -ops)")
	warmup := flag.Int("warmup", 0, "leading ops excluded from the measured histograms (requires -target)")
	distName := flag.String("dist", "", "override the mix's key distribution: zipfian | uniform | latest | hotspot | exponential")
	status := flag.Bool("status", false, "live progress line on stderr (never affects stdout bytes)")
	replicas := flag.Int("replicas", 0, "secondaries per shard, installing committed cut deltas asynchronously (0 = replication off)")
	slaSpec := flag.String("sla", "", "read SLA set assigned round-robin to clients: mix | strong | rmw | monotonic | bounded:K | eventual, each with an optional @DUR latency target (requires -replicas)")
	killPrimary := flag.Int("killprimary", -1, "crash this shard's primary mid-serve and fail over to its most-current secondary (requires -replicas)")
	migrateSpec := flag.String("migrate", "", "live shard migrations: comma-separated KIND:SRC[>DST][@CUTS] entries, e.g. 'split:0@2,move:1>2@4,merge:3>1@6' (excludes -replicas)")
	autosplit := flag.Int("autosplit", 0, "grow the service by splitting the hottest shard up to this many live shards (0 = off; excludes -migrate and -replicas)")
	flag.Parse()

	mix, err := workload.YCSBByName(*mixName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *distName != "" {
		d, err := workload.ParseDist(*distName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		mix.Dist = d
	}
	policy, err := server.ParsePolicy(*policySpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var mode core.Mode
	var store string
	switch strings.ToLower(*backend) {
	case "default":
		mode = core.ModeDefault
	case "buffered":
		mode = core.ModeBuffered
	case "incll":
		store = server.BackendInCLL
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q (default|buffered|incll)\n", *backend)
		return 2
	}
	var kind server.DSKind
	switch strings.ToLower(*ds) {
	case "hashmap", "unordered_map":
		kind = server.DSHashMap
	case "rbmap", "map":
		kind = server.DSRBMap
	default:
		fmt.Fprintf(os.Stderr, "unknown structure %q (hashmap|rbmap)\n", *ds)
		return 2
	}
	slas, err := validateReplFlags(*replicas, *slaSpec, *killPrimary, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	mcfg, err := validateMeasureFlags(*target, *duration, *warmup)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	migrations, autoSplit, err := validateMigrateFlags(*migrateSpec, *autosplit, *replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opCount := *ops
	if mcfg != nil && mcfg.DurationPS > 0 {
		opCount = 0 // time-bounded: the op count follows from the offered load
	}

	cfg := server.Config{
		Shards:     *shards,
		Clients:    *clients,
		Mix:        mix,
		Ops:        opCount,
		Keys:       *keys,
		DS:         kind,
		Backend:    store,
		Mode:       mode,
		HeapSize:   *heap,
		Buckets:    *buckets,
		BatchOps:   *batch,
		StepBudget: *budget,
		Policy:     policy,
		Seed:       *seed,
		Parallel:   *parallel,
		Trace:      *tracePath != "" || *jsonPath != "",
		Replicas:   *replicas,
		SLAs:       slas,
		Measure:    mcfg,
		Migrations: migrations,
		AutoSplit:  autoSplit,
	}
	if *status {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d ops issued", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	wallStart := time.Now()
	if *killPrimary >= 0 {
		// The kill point is the middle of the victim's serving span, so a
		// reference run measures the span first. Both runs are pure
		// functions of the flags; the failover line is too.
		ref, err := server.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if _, err := ref.Run(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		span := ref.PrimitiveSpans()[*killPrimary]
		cfg.Crash = &server.CrashSpec{Shard: *killPrimary, At: span[0] + (span[1]-span[0])/2}
		cfg.Liveness = true
	}
	svc, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res, err := svc.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	wall := time.Since(wallStart)

	t := buildTable(cfg, *backend, *ds, res)
	fmt.Println(t)
	tables := []harness.Table{t}
	if res.Measure != nil {
		mt := buildMeasureTable(res.Measure)
		fmt.Println(mt)
		tables = append(tables, mt)
	}
	if res.FailedOver {
		fmt.Printf("failover: shard %d promoted secondary %d at cut epoch %d (crash at primitive %d)\n",
			res.CrashedShard, res.PromotedReplica, res.PromotedEpoch, cfg.Crash.At)
	}
	for _, m := range res.Migrations {
		fmt.Printf("migration: %s %d>%d flipped at cut epoch %d: %d keys shipped (+%d catch-up ops) across %d ring slots\n",
			m.Kind, m.Src, m.Dst, m.FlipEpoch, m.MovedKeys, m.CatchupOps, m.SlotCount)
	}
	fmt.Fprintf(os.Stderr, "served %d ops on %d shards in %v wall\n", res.TotalOps, cfg.Shards, wall.Round(time.Millisecond))

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, tables); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, res.Trace); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d tracks; open at ui.perfetto.dev)\n", *tracePath, len(res.Trace.Tracks))
	}

	if !res.OK() {
		fmt.Fprintf(os.Stderr, "FAIL: %d consistency violations:\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %v\n", v)
		}
		return 1
	}
	fmt.Fprintln(os.Stderr, "verification passed: every acked op present, zero violations")
	return 0
}

// buildTable renders the run as a harness table: printable rows plus the
// machine-readable metrics that join the BENCH_*.json trajectory. Every
// value is simulated-clock derived, so the table (and the JSON built from
// it) is byte-identical across runs and -parallel settings.
func buildTable(cfg server.Config, backend, ds string, res *server.Result) harness.Table {
	title := fmt.Sprintf("crpmserve: %d shards x %d clients, YCSB-%s, %s/%s, %s, %d ops",
		cfg.Shards, cfg.Clients, cfg.Mix.Name, backend, ds, cfg.Policy.Name(), cfg.Ops)
	if cfg.Replicas > 0 {
		title += fmt.Sprintf(", %d replicas/shard", cfg.Replicas)
	}
	t := harness.Table{
		Title:  title,
		Header: []string{"shard", "ops", "cuts", "epoch", "sim-ms", "Mops/s", "p50-lat-us", "p99-lat-us", "p999-lat-us", "p99-pause-us", "p999-pause-us", "max-pause-us"},
	}
	// The replica columns (and metrics) exist only for replicated runs, so
	// an unreplicated invocation's output is byte-identical to the
	// replication-unaware tool's.
	if cfg.Replicas > 0 {
		t.Header = append(t.Header, "sec-reads", "unmet", "stale-mean", "p99-read-us")
	}
	ps2ms := func(ps int64) string { return fmt.Sprintf("%.3f", float64(ps)/1e9) }
	ps2us := func(ps int64) string { return fmt.Sprintf("%.3f", float64(ps)/1e6) }
	for _, st := range res.Shards {
		var tput float64
		if st.SimPS > 0 {
			tput = float64(st.Ops) * 1e12 / float64(st.SimPS) / 1e6
		}
		row := []string{
			fmt.Sprintf("%d", st.Shard),
			fmt.Sprintf("%d", st.Ops),
			fmt.Sprintf("%d", st.Cuts),
			fmt.Sprintf("%d", st.Epoch),
			ps2ms(st.SimPS),
			fmt.Sprintf("%.3f", tput),
			ps2us(st.P50LatPS),
			ps2us(st.P99LatPS),
			ps2us(st.P999LatPS),
			ps2us(st.P99PausePS),
			ps2us(st.P999PausePS),
			ps2us(st.PauseMaxPS),
		}
		pfx := fmt.Sprintf("serve_shard%d_", st.Shard)
		t.AddMetric(pfx+"ops", float64(st.Ops))
		t.AddMetric(pfx+"cuts", float64(st.Cuts))
		t.AddMetric(pfx+"sim_ms", float64(st.SimPS)/1e9)
		t.AddMetric(pfx+"p99_lat_us", float64(st.P99LatPS)/1e6)
		t.AddMetric(pfx+"p999_lat_us", float64(st.P999LatPS)/1e6)
		t.AddMetric(pfx+"p99_pause_us", float64(st.P99PausePS)/1e6)
		t.AddMetric(pfx+"p999_pause_us", float64(st.P999PausePS)/1e6)
		if cfg.Replicas > 0 {
			row = append(row,
				fmt.Sprintf("%d", st.SecReads),
				fmt.Sprintf("%d", st.UnmetReads),
				fmt.Sprintf("%.2f", st.StaleMeanEpochs),
				ps2us(st.P99ReadLatPS),
			)
			t.AddMetric(pfx+"sec_reads", float64(st.SecReads))
			t.AddMetric(pfx+"unmet_reads", float64(st.UnmetReads))
			t.AddMetric(pfx+"stale_mean_epochs", st.StaleMeanEpochs)
			t.AddMetric(pfx+"p99_read_lat_us", float64(st.P99ReadLatPS)/1e6)
		}
		t.Rows = append(t.Rows, row)
	}
	all := []string{
		"all",
		fmt.Sprintf("%d", res.TotalOps),
		fmt.Sprintf("%d", res.Cuts),
		"",
		ps2ms(res.SimPS),
		fmt.Sprintf("%.3f", res.ThroughputOps/1e6),
		"", ps2us(res.P99LatPS), ps2us(res.P999LatPS), "", "", ps2us(res.MaxPausePS),
	}
	if cfg.Replicas > 0 {
		all = append(all,
			fmt.Sprintf("%d", res.SecReads),
			fmt.Sprintf("%d", res.UnmetReads),
			fmt.Sprintf("%.2f", res.StaleMeanEpochs),
			"",
		)
		t.AddMetric("serve_sec_reads", float64(res.SecReads))
		t.AddMetric("serve_unmet_reads", float64(res.UnmetReads))
		t.AddMetric("serve_stale_mean_epochs", res.StaleMeanEpochs)
		if res.FailedOver {
			t.AddMetric("serve_promoted_replica", float64(res.PromotedReplica))
			t.AddMetric("serve_promoted_epoch", float64(res.PromotedEpoch))
		}
	}
	t.Rows = append(t.Rows, all)
	t.AddMetric("serve_total_ops", float64(res.TotalOps))
	t.AddMetric("serve_cuts", float64(res.Cuts))
	t.AddMetric("serve_sim_ms", float64(res.SimPS)/1e9)
	t.AddMetric("serve_tput_mops", res.ThroughputOps/1e6)
	t.AddMetric("serve_p99_lat_us", float64(res.P99LatPS)/1e6)
	t.AddMetric("serve_p999_lat_us", float64(res.P999LatPS)/1e6)
	t.AddMetric("serve_max_pause_us", float64(res.MaxPausePS)/1e6)
	t.AddMetric("serve_violations", float64(len(res.Violations)))
	// Migration metrics exist only for migratory runs, keeping
	// migration-free output byte-identical to the pre-ring tool's.
	if len(res.Migrations) > 0 {
		t.AddMetric("serve_migrations", float64(len(res.Migrations)))
		var moved, catchup float64
		for _, m := range res.Migrations {
			moved += float64(m.MovedKeys)
			catchup += float64(m.CatchupOps)
		}
		t.AddMetric("serve_migrated_keys", moved)
		t.AddMetric("serve_migration_catchup_ops", catchup)
	}
	return t
}

// buildMeasureTable renders the open-loop measurement report: the
// omission-free (open) and service-time latency tracks side by side, per
// op kind, plus the achieved-throughput and timeseries summary the SLO
// curves are built from. Every value is simulated-clock derived.
func buildMeasureTable(m *measure.Report) harness.Table {
	t := harness.Table{
		Title: fmt.Sprintf("open-loop measurement: target %.0f ops/s, achieved %.0f ops/s, %d measured ops (%d warmup excluded)",
			m.TargetOps, m.AchievedOps, m.MeasuredOps, m.WarmupOps),
		Header: []string{"track", "kind", "n", "p50-us", "p95-us", "p99-us", "p999-us", "max-us", "mean-us"},
		Notes: []string{
			"open: latency from each op's intended arrival (queueing behind cut pauses is charged); service: from dispatch",
		},
	}
	ps2us := func(ps int64) string { return fmt.Sprintf("%.3f", float64(ps)/1e6) }
	add := func(track string, ks ...measure.KindStat) {
		for _, k := range ks {
			t.Rows = append(t.Rows, []string{
				track, k.Kind,
				fmt.Sprintf("%d", k.N),
				ps2us(k.P50PS), ps2us(k.P95PS), ps2us(k.P99PS), ps2us(k.P999PS),
				ps2us(k.MaxPS), ps2us(k.MeanPS),
			})
		}
	}
	add("open", m.OpenAll)
	add("open", m.Open...)
	add("service", m.ServiceAll)
	add("service", m.Service...)
	if n := len(m.Intervals); n > 0 {
		worst := m.Intervals[0]
		for _, iv := range m.Intervals[1:] {
			if iv.OpenP99PS > worst.OpenP99PS {
				worst = iv
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"timeseries: %d intervals of %.3f ms; worst interval #%d (open p99 %s us, %d ops)",
			n, float64(m.IntervalPS)/1e9, worst.Index, ps2us(worst.OpenP99PS), worst.Ops))
		t.AddMetric("serve_worst_interval_open_p99_us", float64(worst.OpenP99PS)/1e6)
	}
	t.AddMetric("serve_target_ops", m.TargetOps)
	t.AddMetric("serve_achieved_ops", m.AchievedOps)
	t.AddMetric("serve_measured_ops", float64(m.MeasuredOps))
	t.AddMetric("serve_open_p99_us", float64(m.OpenAll.P99PS)/1e6)
	t.AddMetric("serve_open_p999_us", float64(m.OpenAll.P999PS)/1e6)
	t.AddMetric("serve_svc_open_gap_p99_us", float64(m.OpenAll.P99PS-m.ServiceAll.P99PS)/1e6)
	t.AddMetric("serve_service_p99_us", float64(m.ServiceAll.P99PS)/1e6)
	return t
}

// writeJSON emits the crpmbench trajectory schema (experiments → tables →
// metrics) with no wall-clock fields, so the file is byte-identical across
// runs and joins BENCH_*.json diffs directly.
func writeJSON(path string, tables []harness.Table) error {
	type jsonTable struct {
		Title   string             `json:"title"`
		Metrics map[string]float64 `json:"metrics,omitempty"`
	}
	out := struct {
		Experiments []struct {
			Name   string      `json:"name"`
			Tables []jsonTable `json:"tables"`
		} `json:"experiments"`
	}{}
	exp := struct {
		Name   string      `json:"name"`
		Tables []jsonTable `json:"tables"`
	}{Name: "serve"}
	for _, t := range tables {
		exp.Tables = append(exp.Tables, jsonTable{Title: t.Title, Metrics: t.Metrics})
	}
	out.Experiments = append(out.Experiments, exp)
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func writeTrace(path string, tr *obs.Trace) error {
	if tr == nil {
		tr = &obs.Trace{}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.WriteChromeTrace(f, tr)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
