package main

import (
	"errors"
	"testing"

	"libcrpm/internal/replica"
	"libcrpm/internal/server"
	"libcrpm/internal/workload"
)

// TestValidateReplFlags is the satellite flag-validation contract: every
// nonsense replication flag combination is rejected with ErrBadFlags, and
// every valid one resolves.
func TestValidateReplFlags(t *testing.T) {
	bad := []struct {
		name                   string
		replicas, kill, shards int
		sla                    string
	}{
		{"negative replicas", -1, -1, 4, ""},
		{"sla without replicas", 0, -1, 4, "mix"},
		{"killprimary without replicas", 0, 2, 4, ""},
		{"killprimary out of range", 2, 4, 4, "mix"},
		{"unknown sla", 2, -1, 4, "strongest"},
		{"malformed bound", 2, -1, 4, "bounded:x"},
		{"malformed latency", 2, -1, 4, "strong@fast"},
	}
	for _, c := range bad {
		if _, err := validateReplFlags(c.replicas, c.sla, c.kill, c.shards); !errors.Is(err, ErrBadFlags) {
			t.Fatalf("%s: err = %v, want ErrBadFlags", c.name, err)
		}
	}
	if set, err := validateReplFlags(0, "", -1, 4); err != nil || set != nil {
		t.Fatalf("replication off: %v, %v", set, err)
	}
	set, err := validateReplFlags(2, "mix", 1, 4)
	if err != nil || len(set) != 5 {
		t.Fatalf("valid flags: %v, %v", set, err)
	}
	set, err = validateReplFlags(1, "bounded:3@2us", -1, 2)
	if err != nil || len(set) != 1 || set[0].Bound != 3 {
		t.Fatalf("bounded spec: %v, %v", set, err)
	}
}

// TestBuildTableReplicaColumns: the replica columns appear exactly when
// replication is on, so unreplicated output stays byte-compatible.
func TestBuildTableReplicaColumns(t *testing.T) {
	cfg := server.Config{
		Shards: 2, Clients: 2, Mix: workload.YCSBB, Ops: 2000, Keys: 500,
		HeapSize: 1 << 20, Buckets: 1 << 9, BatchOps: 256,
		Policy: server.OpsPolicy{Every: 512}, Seed: 3,
	}
	run := func(cfg server.Config) *server.Result {
		svc, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatal(res.Violations[0])
		}
		return res
	}
	plain := buildTable(cfg, "default", "hashmap", run(cfg))
	if got, want := len(plain.Header), 12; got != want {
		t.Fatalf("unreplicated header has %d columns, want %d: %v", got, want, plain.Header)
	}
	if _, ok := plain.Metrics["serve_sec_reads"]; ok {
		t.Fatal("unreplicated table has replica metrics")
	}
	rcfg := cfg
	rcfg.Replicas = 2
	rcfg.SLAs = replica.Mix()
	repl := buildTable(rcfg, "default", "hashmap", run(rcfg))
	if got, want := len(repl.Header), 16; got != want {
		t.Fatalf("replicated header has %d columns, want %d: %v", got, want, repl.Header)
	}
	for _, row := range repl.Rows {
		if len(row) != len(repl.Header) {
			t.Fatalf("row width %d != header %d: %v", len(row), len(repl.Header), row)
		}
	}
	if _, ok := repl.Metrics["serve_sec_reads"]; !ok {
		t.Fatal("replicated table missing serve_sec_reads")
	}
}
