package main

import (
	"errors"
	"testing"

	"libcrpm/internal/replica"
	"libcrpm/internal/server"
	"libcrpm/internal/workload"
)

// TestValidateReplFlags is the satellite flag-validation contract: every
// nonsense replication flag combination is rejected with ErrBadFlags, and
// every valid one resolves.
func TestValidateReplFlags(t *testing.T) {
	bad := []struct {
		name                   string
		replicas, kill, shards int
		sla                    string
	}{
		{"negative replicas", -1, -1, 4, ""},
		{"sla without replicas", 0, -1, 4, "mix"},
		{"killprimary without replicas", 0, 2, 4, ""},
		{"killprimary out of range", 2, 4, 4, "mix"},
		{"unknown sla", 2, -1, 4, "strongest"},
		{"malformed bound", 2, -1, 4, "bounded:x"},
		{"malformed latency", 2, -1, 4, "strong@fast"},
	}
	for _, c := range bad {
		if _, err := validateReplFlags(c.replicas, c.sla, c.kill, c.shards); !errors.Is(err, ErrBadFlags) {
			t.Fatalf("%s: err = %v, want ErrBadFlags", c.name, err)
		}
	}
	if set, err := validateReplFlags(0, "", -1, 4); err != nil || set != nil {
		t.Fatalf("replication off: %v, %v", set, err)
	}
	set, err := validateReplFlags(2, "mix", 1, 4)
	if err != nil || len(set) != 5 {
		t.Fatalf("valid flags: %v, %v", set, err)
	}
	set, err = validateReplFlags(1, "bounded:3@2us", -1, 2)
	if err != nil || len(set) != 1 || set[0].Bound != 3 {
		t.Fatalf("bounded spec: %v, %v", set, err)
	}
}

// TestValidateMigrateFlags is the elastic-resharding flag contract: every
// nonsense -migrate / -autosplit combination is rejected with ErrBadFlags
// (replication exclusion included), and every valid spec parses to the
// matching server.MigrateSpec list.
func TestValidateMigrateFlags(t *testing.T) {
	bad := []struct {
		name                string
		spec                string
		autosplit, replicas int
	}{
		{"migrate with replicas", "split:0@2", 0, 1},
		{"autosplit with replicas", "", 4, 2},
		{"migrate and autosplit", "split:0@2", 4, 0},
		{"negative autosplit", "", -1, 0},
		{"empty entries", " , ,", 0, 0},
		{"missing kind", "0>2@4", 0, 0},
		{"unknown kind", "rebalance:0@2", 0, 0},
		{"split with dst", "split:0>2@2", 0, 0},
		{"move without dst", "move:1@4", 0, 0},
		{"merge without dst", "merge:1@4", 0, 0},
		{"bad src", "split:x@2", 0, 0},
		{"bad dst", "move:1>y@4", 0, 0},
		{"bad cuts", "split:0@zero", 0, 0},
		{"zero cuts", "split:0@0", 0, 0},
	}
	for _, c := range bad {
		if _, _, err := validateMigrateFlags(c.spec, c.autosplit, c.replicas); !errors.Is(err, ErrBadFlags) {
			t.Fatalf("%s: err = %v, want ErrBadFlags", c.name, err)
		}
	}

	specs, as, err := validateMigrateFlags("", 0, 2)
	if err != nil || specs != nil || as.MaxShards != 0 {
		t.Fatalf("elastic off: %v, %v, %v", specs, as, err)
	}
	specs, _, err = validateMigrateFlags("split:0@2, move:1>2@4,merge:3>1@6", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []server.MigrateSpec{
		{Kind: server.MigrateSplit, Src: 0, AfterCuts: 2},
		{Kind: server.MigrateMove, Src: 1, Dst: 2, AfterCuts: 4},
		{Kind: server.MigrateMerge, Src: 3, Dst: 1, AfterCuts: 6},
	}
	if len(specs) != len(want) {
		t.Fatalf("parsed %d specs, want %d: %+v", len(specs), len(want), specs)
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("spec %d: %+v, want %+v", i, specs[i], want[i])
		}
	}
	// @CUTS is optional (server defaults it).
	specs, _, err = validateMigrateFlags("split:1", 0, 0)
	if err != nil || len(specs) != 1 || specs[0].AfterCuts != 0 {
		t.Fatalf("default cuts: %+v, %v", specs, err)
	}
	_, as, err = validateMigrateFlags("", 8, 0)
	if err != nil || as.MaxShards != 8 {
		t.Fatalf("autosplit: %+v, %v", as, err)
	}
}

// TestBuildTableMigrationMetrics: migration metrics appear exactly for
// migratory runs, so migration-free output stays byte-compatible.
func TestBuildTableMigrationMetrics(t *testing.T) {
	cfg := server.Config{
		Shards: 2, Clients: 2, Mix: workload.YCSBA, Ops: 4000, Keys: 1000,
		HeapSize: 1 << 21, Buckets: 1 << 10, BatchOps: 256,
		Policy: server.OpsPolicy{Every: 512}, Seed: 3,
		Migrations: []server.MigrateSpec{{Kind: server.MigrateSplit, Src: 0, AfterCuts: 1}},
	}
	svc, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal(res.Violations[0])
	}
	tb := buildTable(cfg, "default", "hashmap", res)
	if tb.Metrics["serve_migrations"] != 1 {
		t.Fatalf("serve_migrations = %v, want 1", tb.Metrics["serve_migrations"])
	}
	if tb.Metrics["serve_migrated_keys"] <= 0 {
		t.Fatalf("serve_migrated_keys = %v, want > 0", tb.Metrics["serve_migrated_keys"])
	}
	if len(res.Shards) != 3 {
		t.Fatalf("split did not grow the table: %d shard rows", len(res.Shards))
	}
}

// TestBuildTableReplicaColumns: the replica columns appear exactly when
// replication is on, so unreplicated output stays byte-compatible.
func TestBuildTableReplicaColumns(t *testing.T) {
	cfg := server.Config{
		Shards: 2, Clients: 2, Mix: workload.YCSBB, Ops: 2000, Keys: 500,
		HeapSize: 1 << 20, Buckets: 1 << 9, BatchOps: 256,
		Policy: server.OpsPolicy{Every: 512}, Seed: 3,
	}
	run := func(cfg server.Config) *server.Result {
		svc, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatal(res.Violations[0])
		}
		return res
	}
	plain := buildTable(cfg, "default", "hashmap", run(cfg))
	if got, want := len(plain.Header), 12; got != want {
		t.Fatalf("unreplicated header has %d columns, want %d: %v", got, want, plain.Header)
	}
	if _, ok := plain.Metrics["serve_sec_reads"]; ok {
		t.Fatal("unreplicated table has replica metrics")
	}
	rcfg := cfg
	rcfg.Replicas = 2
	rcfg.SLAs = replica.Mix()
	repl := buildTable(rcfg, "default", "hashmap", run(rcfg))
	if got, want := len(repl.Header), 16; got != want {
		t.Fatalf("replicated header has %d columns, want %d: %v", got, want, repl.Header)
	}
	for _, row := range repl.Rows {
		if len(row) != len(repl.Header) {
			t.Fatalf("row width %d != header %d: %v", len(row), len(repl.Header), row)
		}
	}
	if _, ok := repl.Metrics["serve_sec_reads"]; !ok {
		t.Fatal("replicated table missing serve_sec_reads")
	}
}
