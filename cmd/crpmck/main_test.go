package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	crpm "libcrpm"
	"libcrpm/internal/nvm"
)

const (
	testHeap    = 4 << 20
	testSegment = 1 << 20
	testBlock   = 256
)

// makeImage builds a sealed container image on disk and returns its path
// and the device (so callers can corrupt before writing their own copy).
func makeImage(t *testing.T, checksums bool) (string, *nvm.Device) {
	t.Helper()
	st, err := crpm.CreateStore(crpm.Options{
		HeapSize:    testHeap,
		SegmentSize: testSegment,
		BlockSize:   testBlock,
		Checksums:   checksums,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := st.NewHashMap(1 << 8)
	if err != nil {
		t.Fatal(err)
	}
	st.SetRoot(0, uint64(m.Root()))
	for k := uint64(0); k < 200; k++ {
		if err := m.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nvm.img")
	return path, st.Device()
}

func writeImage(t *testing.T, path string, dev *nvm.Device) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteMediaTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func runCk(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func ckArgs(img string, extra ...string) []string {
	return append([]string{
		"-img", img,
		"-heap", strconv.Itoa(testHeap),
		"-segment", strconv.Itoa(testSegment),
		"-block", strconv.Itoa(testBlock),
	}, extra...)
}

func TestCheckConsistentImage(t *testing.T) {
	path, dev := makeImage(t, true)
	writeImage(t, path, dev)
	code, out, _ := runCk(t, ckArgs(path, "-deep")...)
	if code != 0 {
		t.Fatalf("exit %d on consistent image\n%s", code, out)
	}
	if !strings.Contains(out, "OK") && !strings.Contains(out, "consistent") {
		t.Fatalf("report does not state consistency:\n%s", out)
	}
}

func TestRepairCorruptChecksummedImage(t *testing.T) {
	path, dev := makeImage(t, true)
	dev.CorruptRange(0, nvm.LineSize) // epoch line of a sealed image: repairable
	writeImage(t, path, dev)

	// Without -repair the corruption is detected.
	code, _, _ := runCk(t, ckArgs(path)...)
	if code != 1 {
		t.Fatalf("check of corrupt image: exit %d, want 1", code)
	}

	// With -repair the image is fixed and rewritten.
	code, out, stderr := runCk(t, ckArgs(path, "-repair")...)
	if code != 0 {
		t.Fatalf("repair: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if !strings.Contains(out, "repaired image written to") {
		t.Fatalf("repair did not report rewriting:\n%s", out)
	}

	// The rewritten image now checks clean.
	code, out, _ = runCk(t, ckArgs(path, "-deep")...)
	if code != 0 {
		t.Fatalf("post-repair check: exit %d\n%s", code, out)
	}
}

func TestRepairUnrepairablePlainImage(t *testing.T) {
	path, dev := makeImage(t, false)
	dev.CorruptRange(0, nvm.LineSize)
	writeImage(t, path, dev)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	code, _, stderr := runCk(t, ckArgs(path, "-repair")...)
	if code != 1 {
		t.Fatalf("repair of plain corrupt image: exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if stderr == "" {
		t.Fatal("unrepairable image produced no error output")
	}
	// The on-disk image must be untouched on failure.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed repair modified the image file")
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCk(t); code != 2 {
		t.Errorf("missing required flags: exit %d, want 2", code)
	}
	if code, _, _ := runCk(t, "-bogus"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, _ := runCk(t, "-img", "x.img", "-heap", "0"); code != 2 {
		t.Errorf("non-positive heap: exit %d, want 2", code)
	}
}

func TestMissingImageFile(t *testing.T) {
	code, _, stderr := runCk(t, ckArgs(filepath.Join(t.TempDir(), "nope.img"))...)
	if code != 1 || stderr == "" {
		t.Errorf("missing image: exit %d stderr %q, want 1 with message", code, stderr)
	}
}
