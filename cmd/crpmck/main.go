// Command crpmck is the offline consistency checker for libcrpm container
// images (the fsck of this library): it validates the persistent metadata
// invariants of a device image produced by Device.WriteMediaTo and reports
// what epoch the container would recover to.
//
// With -repair, images whose metadata fails its checksums are rebuilt from
// the redundant copy (see region.Repair) and the repaired image is written
// back atomically; the report shows the check result before and after.
//
// Usage:
//
//	crpmck -img nvm.img -heap 67108864 [-segment 2097152] [-block 256] [-deep] [-repair]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"libcrpm/internal/nvm"
	"libcrpm/internal/region"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main's testable body: flags come from args, output goes to the
// given writers, and the exit code is returned instead of os.Exit'd.
// Exit codes: 0 = consistent (or repaired), 1 = inconsistent or
// unrepairable, 2 = usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crpmck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	img := fs.String("img", "", "device image file (required)")
	heap := fs.Int("heap", 0, "container heap size in bytes (required)")
	segment := fs.Int("segment", 0, "segment size (default 2MB)")
	block := fs.Int("block", 0, "block size (default 256B)")
	ratio := fs.Float64("ratio", 1.0, "backup ratio")
	deep := fs.Bool("deep", false, "also compare pair contents")
	repair := fs.Bool("repair", false, "repair checksummed metadata from the redundant copy and rewrite the image")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *img == "" || *heap <= 0 {
		fs.Usage()
		return 2
	}
	f, err := os.Open(*img)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	dev, err := nvm.ReadDeviceFrom(f)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	l, err := region.NewLayout(region.Config{
		HeapSize: *heap, SegmentSize: *segment, BlockSize: *block, BackupRatio: *ratio,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	report := region.Check(dev, l, *deep)
	if !*repair {
		fmt.Fprint(stdout, report)
		if !report.OK() {
			return 1
		}
		return 0
	}

	fmt.Fprintln(stdout, "--- before repair ---")
	fmt.Fprint(stdout, report)
	rep, err := region.Repair(dev, l)
	if err != nil {
		fmt.Fprintf(stderr, "repair: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "--- repair actions ---")
	fmt.Fprint(stdout, rep)
	after := region.Check(dev, l, *deep)
	fmt.Fprintln(stdout, "--- after repair ---")
	fmt.Fprint(stdout, after)
	if !after.OK() {
		fmt.Fprintln(stderr, "image still inconsistent after repair; not rewriting")
		return 1
	}
	if err := rewriteImage(*img, dev); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "repaired image written to %s\n", *img)
	return 0
}

// rewriteImage atomically replaces path with the device's durable media
// contents: repairs are flushed cache-line stores, so the media image is the
// repaired one. Write-to-temp plus rename keeps a crash mid-rewrite from
// truncating the only copy of the image.
func rewriteImage(path string, dev *nvm.Device) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".crpmck-*.img")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := dev.WriteMediaTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
