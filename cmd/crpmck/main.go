// Command crpmck is the offline consistency checker for libcrpm container
// images (the fsck of this library): it validates the persistent metadata
// invariants of a device image produced by Device.WriteMediaTo and reports
// what epoch the container would recover to.
//
// Usage:
//
//	crpmck -img nvm.img -heap 67108864 [-segment 2097152] [-block 256] [-deep]
package main

import (
	"flag"
	"fmt"
	"os"

	"libcrpm/internal/nvm"
	"libcrpm/internal/region"
)

func main() {
	img := flag.String("img", "", "device image file (required)")
	heap := flag.Int("heap", 0, "container heap size in bytes (required)")
	segment := flag.Int("segment", 0, "segment size (default 2MB)")
	block := flag.Int("block", 0, "block size (default 256B)")
	ratio := flag.Float64("ratio", 1.0, "backup ratio")
	deep := flag.Bool("deep", false, "also compare pair contents")
	flag.Parse()

	if *img == "" || *heap <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*img)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	dev, err := nvm.ReadDeviceFrom(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	l, err := region.NewLayout(region.Config{
		HeapSize: *heap, SegmentSize: *segment, BlockSize: *block, BackupRatio: *ratio,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report := region.Check(dev, l, *deep)
	fmt.Print(report)
	if !report.OK() {
		os.Exit(1)
	}
}
