// Command crpmck is the offline consistency checker for libcrpm container
// images (the fsck of this library): it validates the persistent metadata
// invariants of a device image produced by Device.WriteMediaTo and reports
// what epoch the container would recover to.
//
// With -repair, images whose metadata fails its checksums are rebuilt from
// the redundant copy (see region.Repair) and the repaired image is written
// back atomically; the report shows the check result before and after.
//
// Usage:
//
//	crpmck -img nvm.img -heap 67108864 [-segment 2097152] [-block 256] [-deep] [-repair]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"libcrpm/internal/nvm"
	"libcrpm/internal/region"
)

func main() {
	img := flag.String("img", "", "device image file (required)")
	heap := flag.Int("heap", 0, "container heap size in bytes (required)")
	segment := flag.Int("segment", 0, "segment size (default 2MB)")
	block := flag.Int("block", 0, "block size (default 256B)")
	ratio := flag.Float64("ratio", 1.0, "backup ratio")
	deep := flag.Bool("deep", false, "also compare pair contents")
	repair := flag.Bool("repair", false, "repair checksummed metadata from the redundant copy and rewrite the image")
	flag.Parse()

	if *img == "" || *heap <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*img)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	dev, err := nvm.ReadDeviceFrom(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	l, err := region.NewLayout(region.Config{
		HeapSize: *heap, SegmentSize: *segment, BlockSize: *block, BackupRatio: *ratio,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report := region.Check(dev, l, *deep)
	if !*repair {
		fmt.Print(report)
		if !report.OK() {
			os.Exit(1)
		}
		return
	}

	fmt.Println("--- before repair ---")
	fmt.Print(report)
	rep, err := region.Repair(dev, l)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repair: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("--- repair actions ---")
	fmt.Print(rep)
	after := region.Check(dev, l, *deep)
	fmt.Println("--- after repair ---")
	fmt.Print(after)
	if !after.OK() {
		fmt.Fprintln(os.Stderr, "image still inconsistent after repair; not rewriting")
		os.Exit(1)
	}
	if err := rewriteImage(*img, dev); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("repaired image written to %s\n", *img)
}

// rewriteImage atomically replaces path with the device's durable media
// contents: repairs are flushed cache-line stores, so the media image is the
// repaired one. Write-to-temp plus rename keeps a crash mid-rewrite from
// truncating the only copy of the image.
func rewriteImage(path string, dev *nvm.Device) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".crpmck-*.img")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := dev.WriteMediaTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
